// Package synth turns the recovered CFG into C source code (§4.1 "From
// CFG to C code"): one C function per recovered driver function,
// control flow encoded with gotos, the original driver's local and
// global state layout preserved through pointer arithmetic, hardware
// I/O emitted as read_port/write_port/mmio intrinsics, and branches to
// unexercised code flagged with warnings for the developer.
//
// The emitted code targets the driver templates of package template:
// templates provide the intrinsics (port I/O, memory barriers) and
// the OS boilerplate; the synthesized functions are the
// hardware-protocol payload pasted into them.
package synth

import (
	"fmt"
	"sort"
	"strings"

	"revnic/internal/cfg"
	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/trace"
)

// Code-emission styles. The style only changes the shape of the
// emitted C — the recovered graph, function metadata and warnings
// are identical — which is what lets the equivalence harness pin
// "template choice never changes behavior".
const (
	// StyleGoto is the paper's Listing 1 shape: one label per basic
	// block, control flow encoded with gotos. The default.
	StyleGoto = "goto"
	// StyleSwitch is a switch-dispatch state machine: a pc variable
	// selects the basic block inside a for(;;) switch — the shape
	// favoured by targets whose coding standards ban goto (the
	// paper's ucos-ii/KitOS-style ports).
	StyleSwitch = "switch"
)

// StyleNames lists the valid emission styles.
func StyleNames() []string { return []string{StyleGoto, StyleSwitch} }

// ValidStyle reports whether s names an emission style ("" selects
// the default).
func ValidStyle(s string) bool {
	return s == "" || s == StyleGoto || s == StyleSwitch
}

// Options tune code generation.
type Options struct {
	// DriverName labels the generated file.
	DriverName string
	// StackSlots sizes the per-function virtual stack frame.
	StackSlots int
	// Style selects the control-flow emission style (StyleGoto when
	// empty).
	Style string
}

// FuncInfo describes one generated function for template placement.
type FuncInfo struct {
	Name      string
	Entry     uint32
	Role      string
	NumParams int
	HasReturn bool
	// Class is the paper's taxonomy: "hw" (type 1), "os" (type 2),
	// "mixed" (type 3), "algo" (type 4).
	Class string
	// Unexplored counts flagged branches to unexercised code.
	Unexplored int
}

// Output is the synthesis result.
type Output struct {
	// Code is the complete C source.
	Code string
	// Funcs describes every generated function, address-ordered.
	Funcs []FuncInfo
	// Warnings lists human-readable issues (unexplored branches,
	// indirect calls without observed targets).
	Warnings []string
}

// Generate produces C code for the whole recovered graph.
func Generate(g *cfg.Graph, opt Options) *Output {
	if opt.StackSlots == 0 {
		opt.StackSlots = 64
	}
	if opt.Style == "" {
		opt.Style = StyleGoto
	}
	out := &Output{}
	var b strings.Builder
	fmt.Fprintf(&b, "/* Synthesized by RevNIC from the %s binary driver.\n", opt.DriverName)
	b.WriteString(" * The code preserves the original driver's state layout and hardware\n")
	if opt.Style == StyleSwitch {
		b.WriteString(" * protocol; control flow is a switch-dispatch state machine over the\n")
		b.WriteString(" * recovered basic-block addresses.\n")
	} else {
		b.WriteString(" * protocol; control flow is encoded with gotos (see paper, Listing 1).\n")
	}
	b.WriteString(" * Intrinsics (read_port*/write_port*/mmio_*/os_*) are supplied by the\n")
	b.WriteString(" * target-OS driver template.\n */\n\n")
	b.WriteString("#include \"revnic_runtime.h\"\n\n")

	funcs := g.SortedFuncs()
	// Forward declarations.
	for _, f := range funcs {
		b.WriteString(prototype(f))
		b.WriteString(";\n")
	}
	b.WriteString("\n")

	for _, f := range funcs {
		fi := genFunc(&b, g, f, opt, out)
		out.Funcs = append(out.Funcs, fi)
	}
	out.Code = b.String()
	return out
}

func classOf(f *cfg.Function) string {
	switch {
	case f.HasOS && f.HasHW:
		return "mixed"
	case f.HasOS:
		return "os"
	case f.HasHW:
		return "hw"
	default:
		return "algo"
	}
}

func prototype(f *cfg.Function) string {
	ret := "void"
	if f.HasReturn {
		ret = "uint32_t"
	}
	var args []string
	for i := 0; i < f.NumParams; i++ {
		name := fmt.Sprintf("arg%d", i)
		if i == 0 && f.Role != "" && f.Role != "load" {
			// Entry points receive the adapter context first, like
			// Listing 1's GlobalState.
			name = "GlobalState"
		}
		args = append(args, "uint32_t "+name)
	}
	if len(args) == 0 {
		args = []string{"void"}
	}
	return fmt.Sprintf("%s %s(%s)", ret, f.Name(), strings.Join(args, ", "))
}

// genFunc emits one function body.
func genFunc(b *strings.Builder, g *cfg.Graph, f *cfg.Function, opt Options, out *Output) FuncInfo {
	fi := FuncInfo{
		Name: f.Name(), Entry: f.Entry, Role: f.Role,
		NumParams: f.NumParams, HasReturn: f.HasReturn, Class: classOf(f),
	}
	fmt.Fprintf(b, "/* original entry %#x", f.Entry)
	if f.Role != "" {
		fmt.Fprintf(b, " — %s entry point", f.Role)
	}
	fmt.Fprintf(b, "; class: %s */\n", fi.Class)
	b.WriteString(prototype(f))
	b.WriteString("\n{\n")
	// Machine state: the architectural registers become locals; the
	// original stack frame becomes a slot array with incoming
	// arguments placed where the callee expects them ([sp+4+4i]).
	b.WriteString("\tuint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, r5 = 0, r6 = 0;\n")
	fmt.Fprintf(b, "\tuint32_t stk[%d]; uint32_t sp = %d;\n", opt.StackSlots+16, opt.StackSlots)
	b.WriteString("\tstk[sp] = 0; /* return-address slot */\n")
	for i := 0; i < f.NumParams; i++ {
		name := fmt.Sprintf("arg%d", i)
		if i == 0 && f.Role != "" && f.Role != "load" {
			name = "GlobalState"
		}
		fmt.Fprintf(b, "\tstk[sp + %d] = %s;\n", i+1, name)
	}
	b.WriteString("\n")

	sw := opt.Style == StyleSwitch
	if sw {
		// Switch dispatch: the recovered block address is the machine
		// state; every control transfer assigns pc and breaks back to
		// the dispatcher.
		fmt.Fprintf(b, "\tuint32_t pc = %#xu;\n", f.Entry)
		b.WriteString("\tfor (;;) switch (pc) {\n")
	}
	blocks := f.SortedBlocks()
	unexplored := map[uint32]bool{}
	for bi, blk := range blocks {
		if sw {
			fmt.Fprintf(b, "\tcase %#xu:\n", blk.Addr)
		} else {
			fmt.Fprintf(b, "L_%x:\n", blk.Addr)
		}
		for ii, in := range blk.Instrs {
			last := ii == len(blk.Instrs)-1
			genInstr(b, g, f, blk, in, blk.Addr+uint32(ii)*isa.InstrSize, last, sw, unexplored, out)
		}
		t := blk.Term()
		if sw {
			// Calls return and continue into the next block; a split
			// block without a terminator does the same. Both re-enter
			// the dispatcher explicitly — C case fallthrough is never
			// relied on.
			if !t.Op.IsTerminator() || t.Op.IsCall() {
				// Not via jumpTo: a missing continuation lands in the
				// dispatcher's default arm, so no extra warning is
				// minted — keeping Warnings identical across styles.
				fmt.Fprintf(b, "\tpc = %#xu; break;\n", blk.EndAddr())
			}
		} else if !t.Op.IsTerminator() {
			// A split block without a terminator falls through; make
			// the goto explicit unless the next emitted block is the
			// target.
			next := blk.EndAddr()
			if bi+1 >= len(blocks) || blocks[bi+1].Addr != next {
				fmt.Fprintf(b, "\tgoto L_%x;\n", next)
			}
		}
	}
	// Landing pads for unexplored targets.
	for _, a := range sortedAddrs(unexplored) {
		fi.Unexplored++
		out.Warnings = append(out.Warnings,
			fmt.Sprintf("%s: branch to unexercised code at %#x", f.Name(), a))
		if sw {
			fmt.Fprintf(b, "\tcase %#xu: /* REVNIC-WARNING: unexercised basic block; force the DBT\n", a)
			b.WriteString("\t * through this address and re-run synthesis to fill it in (see §4.1) */\n")
			b.WriteString("\trevnic_unexplored();\n")
		} else {
			fmt.Fprintf(b, "L_%x: /* REVNIC-WARNING: unexercised basic block; force the DBT\n", a)
			b.WriteString("\t * through this address and re-run synthesis to fill it in (see §4.1) */\n")
			b.WriteString("\trevnic_unexplored();\n")
		}
	}
	if sw {
		b.WriteString("\tdefault:\n\t\trevnic_unexplored();\n\t}\n")
	}
	if f.HasReturn {
		b.WriteString("\treturn r0;\n")
	}
	b.WriteString("}\n\n")
	return fi
}

func sortedAddrs(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func reg(r isa.Reg) string {
	if r == isa.SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", r)
}

func src2(in isa.Instr) string {
	if in.HasImmOperand() {
		return fmt.Sprintf("%#xu", in.Imm)
	}
	return reg(in.Rs2)
}

// stackOff renders a [sp+K] address as a stk[] index expression.
func stackOff(imm uint32) string {
	return fmt.Sprintf("stk[sp + %d]", imm/4)
}

// jumpTo emits a control transfer in the selected style, flagging
// targets that were never exercised.
func jumpTo(b *strings.Builder, f *cfg.Function, target uint32, sw bool, unexplored map[uint32]bool, indent string) {
	if _, ok := f.Blocks[target]; !ok {
		unexplored[target] = true
	}
	if sw {
		fmt.Fprintf(b, "%spc = %#xu; break;\n", indent, target)
		return
	}
	fmt.Fprintf(b, "%sgoto L_%x;\n", indent, target)
}

func condC(c isa.Cond, lhs, rhs string) string {
	switch c {
	case isa.EQ:
		return fmt.Sprintf("%s == %s", lhs, rhs)
	case isa.NE:
		return fmt.Sprintf("%s != %s", lhs, rhs)
	case isa.LT:
		return fmt.Sprintf("(int32_t)%s < (int32_t)%s", lhs, rhs)
	case isa.GE:
		return fmt.Sprintf("(int32_t)%s >= (int32_t)%s", lhs, rhs)
	case isa.LTU:
		return fmt.Sprintf("%s < %s", lhs, rhs)
	case isa.GEU:
		return fmt.Sprintf("%s >= %s", lhs, rhs)
	}
	return "0"
}

func genInstr(b *strings.Builder, g *cfg.Graph, f *cfg.Function, blk *cfg.BasicBlock,
	in isa.Instr, addr uint32, last bool, sw bool, unexplored map[uint32]bool, out *Output) {

	// Hardware access classification for this instruction, from the
	// wiretap (regular vs device-mapped memory, §3.3).
	ioClass := func() (trace.Class, bool) {
		for _, a := range blk.IO {
			if a.InstrAddr == addr {
				return a.Class, true
			}
		}
		return trace.ClassRegular, false
	}

	switch in.Op {
	case isa.NOP:
	case isa.MOVI:
		fmt.Fprintf(b, "\t%s = %#xu;\n", reg(in.Rd), in.Imm)
	case isa.MOV:
		fmt.Fprintf(b, "\t%s = %s;\n", reg(in.Rd), reg(in.Rs1))
	case isa.ADD:
		fmt.Fprintf(b, "\t%s = %s + %s;\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.SUB:
		fmt.Fprintf(b, "\t%s = %s - %s;\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.AND:
		fmt.Fprintf(b, "\t%s = %s & %s;\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.OR:
		fmt.Fprintf(b, "\t%s = %s | %s;\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.XOR:
		fmt.Fprintf(b, "\t%s = %s ^ %s;\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.SHL:
		fmt.Fprintf(b, "\t%s = %s << (%s & 31);\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.SHR:
		fmt.Fprintf(b, "\t%s = %s >> (%s & 31);\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.SAR:
		fmt.Fprintf(b, "\t%s = (uint32_t)((int32_t)%s >> (%s & 31));\n", reg(in.Rd), reg(in.Rs1), src2(in))
	case isa.MUL:
		fmt.Fprintf(b, "\t%s = %s * %s;\n", reg(in.Rd), reg(in.Rs1), src2(in))

	case isa.LD8, isa.LD16, isa.LD32:
		sz := in.Op.AccessSize() * 8
		if in.Rs1 == isa.SP {
			// Local/parameter access through the virtual frame.
			fmt.Fprintf(b, "\t%s = %s;\n", reg(in.Rd), stackOff(in.Imm))
			return
		}
		if cls, ok := ioClass(); ok && cls != trace.ClassRegular {
			// Device-mapped or DMA memory: must go through the
			// ordering-preserving intrinsics.
			fmt.Fprintf(b, "\t%s = mmio_read%d(%s + %#xu); /* %s */\n",
				reg(in.Rd), sz, reg(in.Rs1), in.Imm, cls)
			return
		}
		// Regular memory: the original pointer arithmetic survives
		// (Listing 1 style).
		fmt.Fprintf(b, "\t%s = *(uint%d_t *)(uintptr_t)(%s + %#xu);\n",
			reg(in.Rd), sz, reg(in.Rs1), in.Imm)
	case isa.ST8, isa.ST16, isa.ST32:
		sz := in.Op.AccessSize() * 8
		if in.Rs1 == isa.SP {
			fmt.Fprintf(b, "\t%s = %s;\n", stackOff(in.Imm), reg(in.Rs2))
			return
		}
		if cls, ok := ioClass(); ok && cls != trace.ClassRegular {
			fmt.Fprintf(b, "\tmmio_write%d(%s + %#xu, %s); /* %s */\n",
				sz, reg(in.Rs1), in.Imm, reg(in.Rs2), cls)
			return
		}
		fmt.Fprintf(b, "\t*(uint%d_t *)(uintptr_t)(%s + %#xu) = (uint%d_t)%s;\n",
			sz, reg(in.Rs1), in.Imm, sz, reg(in.Rs2))

	case isa.IN8, isa.IN16, isa.IN32:
		fmt.Fprintf(b, "\t%s = read_port%d(%s + %#xu);\n",
			reg(in.Rd), in.Op.AccessSize()*8, reg(in.Rs1), in.Imm)
	case isa.OUT8, isa.OUT16, isa.OUT32:
		fmt.Fprintf(b, "\twrite_port%d(%s + %#xu, %s);\n",
			in.Op.AccessSize()*8, reg(in.Rs1), in.Imm, reg(in.Rs2))

	case isa.PUSH:
		fmt.Fprintf(b, "\tstk[--sp] = %s;\n", reg(in.Rs1))
	case isa.POP:
		fmt.Fprintf(b, "\t%s = stk[sp++];\n", reg(in.Rd))

	case isa.JMP:
		jumpTo(b, f, in.Imm, sw, unexplored, "\t")
	case isa.BR, isa.BRI:
		rhs := reg(in.Rs2)
		if in.Op == isa.BRI {
			rhs = fmt.Sprintf("%#xu", uint32(uint8(in.Rs2)))
		}
		if sw {
			// The dispatch break must stay inside the condition.
			if _, ok := f.Blocks[in.Imm]; !ok {
				unexplored[in.Imm] = true
			}
			fmt.Fprintf(b, "\tif (%s) { pc = %#xu; break; }\n",
				condC(in.Cond(), reg(in.Rs1), rhs), in.Imm)
			jumpTo(b, f, blk.EndAddr(), sw, unexplored, "\t")
			return
		}
		fmt.Fprintf(b, "\tif (%s) ", condC(in.Cond(), reg(in.Rs1), rhs))
		jumpTo(b, f, in.Imm, sw, unexplored, "")
		// The fallthrough successor continues; if it is not the
		// lexically next block, emit an explicit goto.
		fallthrough_ := blk.EndAddr()
		if _, ok := f.Blocks[fallthrough_]; !ok {
			jumpTo(b, f, fallthrough_, sw, unexplored, "\t")
		}
	case isa.JR:
		// Jump table: expand the observed targets (§3.4).
		if len(blk.Succs) == 0 {
			out.Warnings = append(out.Warnings,
				fmt.Sprintf("%s: indirect jump at %#x with no observed targets", f.Name(), addr))
			b.WriteString("\trevnic_unexplored(); /* indirect jump, no observed targets */\n")
			return
		}
		if sw {
			// An if-chain, not a nested switch: the dispatch breaks
			// must bind to the outer switch.
			b.WriteString("\t/* recovered jump table */\n")
			for _, t := range blk.Succs {
				fmt.Fprintf(b, "\tif (%s == %#xu) { pc = %#xu; break; }\n", reg(in.Rs1), t, t)
			}
			b.WriteString("\trevnic_unexplored();\n")
			return
		}
		fmt.Fprintf(b, "\tswitch (%s) { /* recovered jump table */\n", reg(in.Rs1))
		for _, t := range blk.Succs {
			fmt.Fprintf(b, "\tcase %#xu: goto L_%x;\n", t, t)
		}
		b.WriteString("\tdefault: revnic_unexplored();\n\t}\n")
	case isa.CALL:
		genCall(b, g, f, in.Imm, out)
	case isa.CALLR:
		out.Warnings = append(out.Warnings,
			fmt.Sprintf("%s: indirect call at %#x", f.Name(), addr))
		b.WriteString("\trevnic_unexplored(); /* indirect call */\n")
	case isa.RET:
		if f.HasReturn {
			b.WriteString("\treturn r0;\n")
		} else {
			b.WriteString("\treturn;\n")
		}
	case isa.IRET:
		b.WriteString("\treturn; /* interrupt return */\n")
	case isa.HLT:
		b.WriteString("\trevnic_halt();\n")
	}
}

// genCall emits a guest-internal or OS API call. Arguments live on
// the virtual stack (pushed by preceding code); stdcall semantics pop
// them here, on the callee's behalf.
func genCall(b *strings.Builder, g *cfg.Graph, f *cfg.Function, target uint32, out *Output) {
	if hw.IsAPIGate(target) {
		idx := hw.APIIndex(target)
		name := fmt.Sprintf("api_%d", idx)
		n := 0
		if idx < guestos.NumAPIs {
			name = guestos.Table[idx].Name
			n = guestos.Table[idx].NArgs
		}
		args := make([]string, n)
		for i := range args {
			args[i] = fmt.Sprintf("stk[sp + %d]", i)
		}
		fmt.Fprintf(b, "\tr0 = os_%s(%s);\n", name, strings.Join(args, ", "))
		if n > 0 {
			fmt.Fprintf(b, "\tsp += %d;\n", n)
		}
		return
	}
	callee := g.Funcs[target]
	if callee == nil {
		out.Warnings = append(out.Warnings,
			fmt.Sprintf("%s: call to unrecovered function %#x", f.Name(), target))
		fmt.Fprintf(b, "\trevnic_unexplored(); /* call to unrecovered %#x */\n", target)
		return
	}
	args := make([]string, callee.NumParams)
	for i := range args {
		args[i] = fmt.Sprintf("stk[sp + %d]", i)
	}
	if callee.HasReturn {
		fmt.Fprintf(b, "\tr0 = %s(%s);\n", callee.Name(), strings.Join(args, ", "))
	} else {
		fmt.Fprintf(b, "\t%s(%s);\n", callee.Name(), strings.Join(args, ", "))
	}
	if callee.PopBytes > 0 {
		// Restore the virtual stack by the callee's observed cleanup
		// (its "ret n"), which may exceed the recovered parameter
		// count if the callee ignores an argument.
		fmt.Fprintf(b, "\tsp += %d; /* stdcall: callee pops */\n", callee.PopBytes/4)
	}
}
