package synth

import (
	"strings"
	"testing"
)

func TestDiffIdenticalOutputsAreQuiet(t *testing.T) {
	_, g := reversedGraph(t, "RTL8029")
	a := Generate(g, Options{DriverName: "RTL8029"})
	b := Generate(g, Options{DriverName: "RTL8029"})
	if ch := Diff(a, b); len(ch) != 0 {
		t.Fatalf("identical outputs diff: %v", ch)
	}
	if !strings.Contains(RenderDiff(nil), "no functional changes") {
		t.Error("empty render")
	}
}

func TestDiffDetectsVersionChanges(t *testing.T) {
	// Two explorations of two *different* drivers sharing roles:
	// everything matched by role must register as changed, and
	// role-less helpers as added/removed.
	_, g1 := reversedGraph(t, "RTL8029")
	_, g2 := reversedGraph(t, "RTL8139")
	a := Generate(g1, Options{DriverName: "v1"})
	b := Generate(g2, Options{DriverName: "v2"})
	changes := Diff(a, b)
	if len(changes) == 0 {
		t.Fatal("no changes across different drivers")
	}
	kinds := map[string]int{}
	roles := map[string]string{}
	for _, c := range changes {
		kinds[c.Kind]++
		if c.Role != "" {
			roles[c.Role] = c.Kind
		}
	}
	if roles["send"] != "changed" || roles["initialize"] != "changed" {
		t.Errorf("entry points should be 'changed': %v", roles)
	}
	if kinds["added"] == 0 || kinds["removed"] == 0 {
		t.Errorf("expected added+removed helpers: %v", kinds)
	}
	if out := RenderDiff(changes); !strings.Contains(out, "changed") {
		t.Error("render missing changes")
	}
}

func TestDiffIgnoresPureCodeMotion(t *testing.T) {
	// Same driver assembled at the same base explored with different
	// seeds: code addresses identical, bodies identical -> quiet.
	// (True relocation-insensitivity is exercised by normalizeBody's
	// label scrubbing, tested here via direct input.)
	if normalizeBody("L_10aa0:\n\tgoto L_10ab8;\n") != normalizeBody("L_20aa0:\n\tgoto L_20ab8;\n") {
		t.Error("label normalization broken")
	}
}
