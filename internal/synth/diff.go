package synth

import (
	"fmt"
	"sort"
	"strings"
)

// FuncChange describes one function-level difference between two
// synthesis outputs.
type FuncChange struct {
	// Kind is "added", "removed" or "changed".
	Kind string
	Name string
	Role string
}

// Diff compares two synthesis outputs function by function — the §6
// maintenance workflow: "RevNIC can be rerun easily every time there
// is an update to the original binary driver. The resulting source
// code can be compared to the initially reverse engineered code and
// the differences merged into the reverse engineered driver, like in
// a version control system."
//
// Functions are matched by role when they have one (entry points keep
// their role across driver versions even when code moves), and by
// name otherwise. A function is "changed" when its generated body
// differs textually.
func Diff(old, new_ *Output) []FuncChange {
	oldBodies := extractBodies(old)
	newBodies := extractBodies(new_)
	oldByKey := map[string]FuncInfo{}
	for _, f := range old.Funcs {
		oldByKey[funcKey(f)] = f
	}
	newByKey := map[string]FuncInfo{}
	for _, f := range new_.Funcs {
		newByKey[funcKey(f)] = f
	}

	var out []FuncChange
	for k, f := range newByKey {
		if _, ok := oldByKey[k]; !ok {
			out = append(out, FuncChange{Kind: "added", Name: f.Name, Role: f.Role})
			continue
		}
		if normalizeBody(oldBodies[oldByKey[k].Name]) != normalizeBody(newBodies[f.Name]) {
			out = append(out, FuncChange{Kind: "changed", Name: f.Name, Role: f.Role})
		}
	}
	for k, f := range oldByKey {
		if _, ok := newByKey[k]; !ok {
			out = append(out, FuncChange{Kind: "removed", Name: f.Name, Role: f.Role})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// funcKey matches functions across versions: by role when present
// (addresses shift between builds), by name otherwise.
func funcKey(f FuncInfo) string {
	if f.Role != "" {
		return "role:" + f.Role
	}
	return "name:" + f.Name
}

// extractBodies splits the generated file into per-function bodies.
func extractBodies(o *Output) map[string]string {
	out := map[string]string{}
	code := o.Code
	for _, f := range o.Funcs {
		// The body starts at the definition (prototype followed by
		// "\n{") and ends at the matching close brace column 0.
		marker := f.Name + "("
		idx := strings.Index(code, marker)
		if idx < 0 {
			continue
		}
		// Skip the forward declaration: find the occurrence followed
		// by a body.
		for idx >= 0 {
			braceIdx := strings.Index(code[idx:], "\n{")
			semiIdx := strings.Index(code[idx:], ";")
			if braceIdx >= 0 && (semiIdx < 0 || braceIdx < semiIdx) {
				break
			}
			next := strings.Index(code[idx+1:], marker)
			if next < 0 {
				idx = -1
				break
			}
			idx += 1 + next
		}
		if idx < 0 {
			continue
		}
		end := strings.Index(code[idx:], "\n}\n")
		if end < 0 {
			end = len(code) - idx
		} else {
			end += 3
		}
		out[f.Name] = code[idx : idx+end]
	}
	return out
}

// normalizeBody strips label addresses and goto targets so that pure
// code motion (same instructions at different load addresses) does
// not register as a change.
func normalizeBody(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "L_") && strings.HasSuffix(trimmed, ":") {
			b.WriteString("L:\n")
			continue
		}
		for {
			i := strings.Index(trimmed, "goto L_")
			if i < 0 {
				break
			}
			j := i + len("goto L_")
			for j < len(trimmed) && trimmed[j] != ';' {
				j++
			}
			trimmed = trimmed[:i] + "goto L" + trimmed[j:]
		}
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderDiff prints a change list.
func RenderDiff(changes []FuncChange) string {
	if len(changes) == 0 {
		return "no functional changes\n"
	}
	var b strings.Builder
	for _, c := range changes {
		role := ""
		if c.Role != "" {
			role = " (" + c.Role + ")"
		}
		fmt.Fprintf(&b, "%-8s %s%s\n", c.Kind, c.Name, role)
	}
	return b.String()
}
