// Package core is RevNIC's public API: it wires together the
// exerciser/tracer (symbolic execution with symbolic hardware), the
// trace-to-CFG reconstruction, the code synthesizer, and the driver
// templates into the end-to-end pipeline of Figure 1:
//
//	binary driver ──► wiretap + selective symbolic execution
//	              ──► activity traces ──► CFG ──► C code
//	              ──► template instantiation ──► synthetic driver
//
// The synthetic driver can be emitted as C source for a chosen target
// OS, or instantiated as an executable (package synthdrv) for the
// equivalence and performance experiments of §5.
package core

import (
	"fmt"

	"revnic/internal/cfg"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/symexec"
	"revnic/internal/synth"
	"revnic/internal/synthdrv"
	"revnic/internal/template"
)

// Options configures a reverse-engineering run.
type Options struct {
	// Shell is the shell-device PCI descriptor (vendor/device ID,
	// I/O window, IRQ line) the developer supplies on the command
	// line (§3.4).
	Shell hw.PCIConfig
	// Engine tunes exploration; Shell overrides Engine.Shell.
	Engine symexec.Config
	// DriverName labels generated artifacts.
	DriverName string
	// Style selects the synthesis code-emission style
	// (synth.StyleGoto when empty). The style changes only the shape
	// of the emitted C; the recovered graph — and therefore the
	// executable synthetic driver — is identical.
	Style string
}

// Reversed is the complete result of reverse engineering one binary
// driver.
type Reversed struct {
	Name string
	// Exploration carries coverage curves and wiretap statistics.
	Exploration *symexec.Result
	// Graph is the recovered control flow graph.
	Graph *cfg.Graph
	// Synth is the generated C code and per-function metadata.
	Synth *synth.Output
	// GroundTruth is the static disassembly used only for metrics.
	GroundTruth *cfg.StaticGroundTruth
}

// ReverseEngineer runs the full RevNIC pipeline on a driver binary.
// Only prog.Base and prog.Code are consumed — symbol information, if
// any, is ignored, as with a real closed-source binary.
func ReverseEngineer(prog *isa.Program, opt Options) (*Reversed, error) {
	ecfg := opt.Engine
	ecfg.Shell = opt.Shell
	eng := symexec.New(prog, ecfg)
	res, err := eng.Explore()
	if err != nil {
		return nil, fmt.Errorf("core: exploration: %w", err)
	}
	g := cfg.Build(res.Collector)
	out := synth.Generate(g, synth.Options{DriverName: opt.DriverName, Style: opt.Style})
	return &Reversed{
		Name:        opt.DriverName,
		Exploration: res,
		Graph:       g,
		Synth:       out,
		GroundTruth: cfg.Static(prog.Base, prog.Code),
	}, nil
}

// Coverage returns the fraction of ground-truth basic blocks the
// exploration reached (the y-axis of Figure 8).
func (r *Reversed) Coverage() float64 {
	covered := map[uint32]bool{}
	for a := range r.Graph.Blocks {
		covered[a] = true
	}
	return r.GroundTruth.Coverage(covered)
}

// InstantiateTemplate produces the complete driver source for a
// target OS: boilerplate plus the synthesized hardware-protocol code.
func (r *Reversed) InstantiateTemplate(os template.OS) string {
	return template.Instantiate(os, r.Name, r.Synth)
}

// NewSyntheticDriver builds an executable synthesized driver bound to
// a target OS runtime and a hardware bus. The returned driver
// implements hw.MemBus, so DMA-capable device models should be
// constructed with it as their memory.
func (r *Reversed) NewSyntheticDriver(os template.OS, bus *hw.Bus, cfg hw.PCIConfig) (*synthdrv.Driver, *template.Runtime) {
	rt := template.NewRuntime(os, cfg)
	d := synthdrv.New(r.Graph, rt, bus)
	return d, rt
}
