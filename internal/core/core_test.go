package core

import (
	"strings"
	"testing"

	"revnic/internal/drivers"
	"revnic/internal/symexec"
	"revnic/internal/template"
)

// reverse runs the full pipeline for one driver, cached across tests
// in this package because exploration is the expensive step.
var reversedCache = map[string]*Reversed{}

func reverse(t *testing.T, name string) (*drivers.Info, *Reversed) {
	t.Helper()
	info, err := drivers.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := reversedCache[name]; ok {
		return info, r
	}
	rev, err := ReverseEngineer(info.Program, Options{
		Shell:      ShellConfig(info),
		DriverName: info.Name,
		Engine:     symexec.Config{Seed: 7},
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	reversedCache[name] = rev
	return info, rev
}

func TestPipelineCoverage(t *testing.T) {
	for _, d := range drivers.All() {
		t.Run(d.Name, func(t *testing.T) {
			_, rev := reverse(t, d.Name)
			cov := rev.Coverage()
			// §5.4: "most tested drivers reach over 80% basic block
			// coverage in less than twenty minutes".
			if cov < 0.80 {
				t.Errorf("coverage %.1f%% < 80%%", cov*100)
			}
			if len(rev.Synth.Funcs) < 10 {
				t.Errorf("only %d functions synthesized", len(rev.Synth.Funcs))
			}
		})
	}
}

func TestGeneratedCodeShape(t *testing.T) {
	_, rev := reverse(t, "RTL8029")
	code := rev.Synth.Code
	for _, want := range []string{
		"write_port8(", // hardware I/O intrinsics
		"read_port8(",
		"goto L_",              // goto control flow (Listing 1)
		"uint32_t GlobalState", // preserved context-pointer style
		"os_NdisMIndicateReceivePacket",
		"stdcall: callee pops",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// Each entry point must appear as a synthesized function.
	roles := map[string]bool{}
	for _, f := range rev.Synth.Funcs {
		roles[f.Role] = true
	}
	for _, r := range []string{"initialize", "send", "isr", "query", "set", "halt"} {
		if !roles[r] {
			t.Errorf("no synthesized function for role %s", r)
		}
	}
}

func TestTemplateInstantiation(t *testing.T) {
	_, rev := reverse(t, "RTL8029")
	for _, os := range template.AllOS {
		src := rev.InstantiateTemplate(os)
		if !strings.Contains(src, "synthesized by RevNIC") {
			t.Errorf("%s: missing banner", os)
		}
		if !strings.Contains(src, rev.Synth.Code[:40]) {
			t.Errorf("%s: synthesized code not embedded", os)
		}
	}
	// Table 3 numbers are exposed.
	if template.PersonDays[template.Windows] != 5 || template.PersonDays[template.KitOS] != 0 {
		t.Error("Table 3 template effort wrong")
	}
}

// TestEquivalenceAllDrivers is the §5.2 experiment: identical
// workloads on original and synthesized drivers must produce
// identical hardware I/O traces, and every Table 2 feature must work.
func TestEquivalenceAllDrivers(t *testing.T) {
	for _, d := range drivers.All() {
		t.Run(d.Name, func(t *testing.T) {
			info, rev := reverse(t, d.Name)
			rep, err := CheckEquivalence(info, rev, template.Windows)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.IOTraceEqual {
				t.Errorf("I/O traces diverge: %s (orig %d ops, synth %d ops)",
					rep.FirstDivergence, rep.OrigOps, rep.SynthOps)
			}
			if rep.OrigOps < 20 {
				t.Errorf("suspiciously few I/O ops: %d", rep.OrigOps)
			}
			for name, ok := range map[string]bool{
				"init/shutdown": rep.InitShutdown,
				"send/receive":  rep.SendReceive,
				"multicast":     rep.Multicast,
				"get/set MAC":   rep.GetSetMAC,
				"promiscuous":   rep.Promiscuous,
				"full duplex":   rep.FullDuplex,
			} {
				if !ok {
					t.Errorf("feature %s not reproduced", name)
				}
			}
			if d.HasDMA && rep.DMA != "yes" {
				t.Errorf("DMA = %s", rep.DMA)
			}
			if d.Name == "RTL8139" && (rep.WakeOnLAN != "yes" || rep.LED != "yes") {
				t.Errorf("RTL8139 WOL=%s LED=%s", rep.WakeOnLAN, rep.LED)
			}
		})
	}
}

func TestPortingToAllTargets(t *testing.T) {
	// §5.1 ports: PCNet, RTL8139, RTL8029 to Linux+Windows+KitOS;
	// 91C111 to µC/OS-II and KitOS. The synthesized driver must run
	// its init/send/halt cycle on each target runtime.
	ports := map[string][]template.OS{
		"AMD PCNet":   {template.Windows, template.Linux, template.KitOS},
		"RTL8139":     {template.Windows, template.Linux, template.KitOS},
		"RTL8029":     {template.Windows, template.Linux, template.KitOS},
		"SMSC 91C111": {template.UCOS, template.KitOS},
	}
	for name, targets := range ports {
		info, rev := reverse(t, name)
		for _, osKind := range targets {
			rep, err := CheckEquivalence(info, rev, osKind)
			if err != nil {
				t.Errorf("%s -> %s: %v", name, osKind, err)
				continue
			}
			if !rep.IOTraceEqual {
				t.Errorf("%s -> %s: trace divergence: %s", name, osKind, rep.FirstDivergence)
			}
		}
	}
}

// TestWorkersBitIdentical checks the end-to-end guarantee of the
// parallel exploration mode: the whole pipeline output — synthesized
// C code, coverage, and the recovered graph's statistics — is
// bit-identical between a serial and a parallel run with the same
// seed.
func TestWorkersBitIdentical(t *testing.T) {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Reversed {
		rev, err := ReverseEngineer(info.Program, Options{
			Shell:      ShellConfig(info),
			DriverName: info.Name,
			Engine:     symexec.Config{Seed: 11, Workers: workers},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rev
	}
	serial, parallel := run(1), run(4)
	if serial.Synth.Code != parallel.Synth.Code {
		t.Error("synthesized code differs between worker counts")
	}
	if serial.Coverage() != parallel.Coverage() {
		t.Errorf("coverage differs: %v vs %v", serial.Coverage(), parallel.Coverage())
	}
	if serial.Graph.ComputeStats() != parallel.Graph.ComputeStats() {
		t.Error("graph statistics differ between worker counts")
	}
	for _, os := range template.AllOS {
		if serial.InstantiateTemplate(os) != parallel.InstantiateTemplate(os) {
			t.Errorf("%s template differs between worker counts", os)
		}
	}
}
