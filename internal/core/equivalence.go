package core

import (
	"bytes"
	"fmt"

	"revnic/internal/drivers"
	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/nic"
	"revnic/internal/synthdrv"
	"revnic/internal/template"
	"revnic/internal/vm"
)

// IOEvent is one hardware access in an equivalence trace.
type IOEvent struct {
	Port  bool
	Write bool
	Addr  uint32
	Size  int
	Value uint32
}

// FeatureReport is one Table 2 row: which functionality the
// synthesized driver reproduces, verified by comparing hardware I/O
// traces of the original and synthesized drivers under identical
// workloads (§5.2).
type FeatureReport struct {
	Driver string

	InitShutdown bool
	SendReceive  bool
	Multicast    bool
	GetSetMAC    bool
	Promiscuous  bool
	FullDuplex   bool
	DMA          string // "yes", "N/A"
	WakeOnLAN    string // "yes", "N/A", "N/T"
	LED          string // "yes", "N/T"

	// IOTraceEqual is the byte-level comparison of the two traces.
	IOTraceEqual bool
	// OrigOps and SynthOps count the hardware operations compared.
	OrigOps  int
	SynthOps int
	// FirstDivergence describes the first mismatch, if any.
	FirstDivergence string
}

// NewDevice builds the device model matching a driver. mem supplies
// DMA access for bus-master chips.
func NewDevice(name string, line *hw.IRQLine, mem hw.MemBus, mac [6]byte) (nic.Model, error) {
	switch name {
	case "RTL8029":
		return nic.NewRTL8029(line, mac), nil
	case "RTL8139":
		return nic.NewRTL8139(line, mem, mac), nil
	case "AMD PCNet":
		return nic.NewPCNet(line, mem, mac), nil
	case "SMSC 91C111":
		return nic.NewSMC91C111(line, mac), nil
	case "SBLK100":
		return nic.NewSBLK100(line, mac), nil
	}
	return nil, fmt.Errorf("core: no device model for %q", name)
}

// ShellConfig returns the standard shell-device descriptor for a
// driver (what the developer reads out of the device manager).
func ShellConfig(d *drivers.Info) hw.PCIConfig {
	return hw.PCIConfig{
		VendorID: d.VendorID, DeviceID: d.DeviceID,
		IOBase: 0xC000, IOSize: 0x100, IRQLine: 11,
	}
}

// equivalence workload: the operation sequence applied identically to
// both drivers.
type eqOps struct {
	mac           [6]byte
	sends         [][]byte
	inbound       [][]byte
	mcast         []byte
	filterPromisc []byte
	filterNormal  []byte
}

func makeEqOps(mac [6]byte) eqOps {
	frame := func(dst [6]byte, n int) []byte {
		f := make([]byte, n)
		copy(f, dst[:])
		copy(f[6:], mac[:])
		f[12], f[13] = 0x08, 0x00
		for i := 14; i < n; i++ {
			f[i] = byte(i * 3)
		}
		return f
	}
	bcast := [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	return eqOps{
		mac:     mac,
		sends:   [][]byte{frame(bcast, 64), frame(bcast, 512), frame(bcast, 1514)},
		inbound: [][]byte{frame(mac, 96), frame(mac, 1200)},
		mcast: []byte{
			0x01, 0x00, 0x5E, 0x00, 0x00, 0x01,
			0x01, 0x00, 0x5E, 0x7F, 0xFF, 0xFA,
		},
		filterPromisc: []byte{guestos.FilterPromiscuous | guestos.FilterDirected, 0, 0, 0},
		filterNormal:  []byte{guestos.FilterDirected | guestos.FilterBroadcast | guestos.FilterMulticast, 0, 0, 0},
	}
}

// runOriginal exercises the original binary driver on its device,
// recording the I/O trace.
func runOriginal(info *drivers.Info, ops eqOps) ([]IOEvent, nic.Model, *guestos.OS, error) {
	rig, err := NewOriginalRig(info, ops.mac)
	if err != nil {
		return nil, nil, nil, err
	}
	_, err = driveWorkload(rig.Side, rig.Dev, ops)
	return rig.Trace(), rig.Dev, rig.OS, err
}

// runSynthesized exercises the synthesized driver on a fresh device
// of the same type, recording its I/O trace.
func runSynthesized(rev *Reversed, info *drivers.Info, osKind template.OS, ops eqOps) ([]IOEvent, nic.Status, nic.Model, *template.Runtime, error) {
	rig, err := NewSynthRig(rev, info, osKind, ops.mac)
	if err != nil {
		return nil, nic.Status{}, nil, nil, err
	}
	snap, err := driveWorkload(rig.Side, rig.Dev, ops)
	return rig.Trace(), snap, rig.Dev, rig.RT, err
}

// Side abstracts "a driver with an OS around it" so an identical
// workload can drive the original binary and the synthesized code.
type Side interface {
	Initialize() error
	Send(frame []byte) (uint32, error)
	Pump(max int) (int, error)
	Query(oid, n uint32) (uint32, []byte, error)
	Set(oid uint32, in []byte) (uint32, error)
	FireTimer() error
	Halt() error
}

type originalSide struct{ os *guestos.OS }

func (o originalSide) Initialize() error { return o.os.Initialize() }
func (o originalSide) Send(f []byte) (uint32, error) {
	return o.os.Send(f)
}
func (o originalSide) Pump(max int) (int, error) {
	return o.os.PumpInterrupts(max)
}
func (o originalSide) Query(oid, n uint32) (uint32, []byte, error) { return o.os.Query(oid, n) }
func (o originalSide) Set(oid uint32, in []byte) (uint32, error)   { return o.os.Set(oid, in) }
func (o originalSide) FireTimer() error                            { return o.os.FireTimer() }
func (o originalSide) Halt() error                                 { return o.os.Halt() }

type synthSide struct {
	d  *synthdrv.Driver
	rt *template.Runtime
}

func (s synthSide) Initialize() error { return s.d.Initialize() }
func (s synthSide) Send(f []byte) (uint32, error) {
	s.rt.Lock()
	return s.d.Send(f)
}
func (s synthSide) Pump(max int) (int, error) {
	return s.d.PumpInterrupts(max)
}
func (s synthSide) Query(oid, n uint32) (uint32, []byte, error) { return s.d.Query(oid, n) }
func (s synthSide) Set(oid uint32, in []byte) (uint32, error)   { return s.d.Set(oid, in) }
func (s synthSide) FireTimer() error                            { return s.d.FireTimer() }
func (s synthSide) Halt() error                                 { return s.d.Halt() }

// Rig is one executable driver instance — the original binary under
// the guest OS, or the synthesized driver under the template runtime
// — bound to a fresh device model, with every hardware access it
// performs recorded. The differential fuzzer builds one rig per side
// per schedule; the equivalence checker builds one pair per driver.
type Rig struct {
	Side Side
	Dev  nic.Model
	// OS is set on original-side rigs.
	OS *guestos.OS
	// RT is set on synthesized-side rigs.
	RT    *template.Runtime
	trace *[]IOEvent
}

// Trace returns the hardware accesses recorded so far.
func (r *Rig) Trace() []IOEvent { return *r.trace }

// NewOriginalRig loads the original binary driver into a fresh VM
// attached to a fresh device model.
func NewOriginalRig(info *drivers.Info, mac [6]byte) (*Rig, error) {
	bus := hw.NewBus()
	m := vm.New(bus)
	cfgp := ShellConfig(info)
	dev, err := NewDevice(info.Name, &bus.Line, m, mac)
	if err != nil {
		return nil, err
	}
	bus.Attach(dev.(hw.Device), cfgp)
	if err := m.LoadImage(info.Program); err != nil {
		return nil, err
	}
	os := guestos.New(m, cfgp)
	tr := &[]IOEvent{}
	m.AddIOTap(func(port, write bool, addr uint32, size int, v uint32) {
		*tr = append(*tr, IOEvent{port, write, addr, size, v})
	})
	if err := os.LoadDriver(info.Program.Base); err != nil {
		return nil, err
	}
	return &Rig{Side: originalSide{os}, Dev: dev, OS: os, trace: tr}, nil
}

// NewSynthRig instantiates the synthesized driver from a reversed
// graph against a fresh device model of the same type.
func NewSynthRig(rev *Reversed, info *drivers.Info, osKind template.OS, mac [6]byte) (*Rig, error) {
	bus := hw.NewBus()
	cfgp := ShellConfig(info)
	d, rt := rev.NewSyntheticDriver(osKind, bus, cfgp)
	dev, err := NewDevice(info.Name, &bus.Line, d, mac)
	if err != nil {
		return nil, err
	}
	bus.Attach(dev.(hw.Device), cfgp)
	tr := &[]IOEvent{}
	d.IOTap = func(port, write bool, addr uint32, size int, v uint32) {
		*tr = append(*tr, IOEvent{port, write, addr, size, v})
	}
	return &Rig{Side: synthSide{d, rt}, Dev: dev, RT: rt, trace: tr}, nil
}

// driveWorkload applies the equivalence workload to one side. The
// returned status is snapshotted after the feature sets but before
// Halt (which legitimately clears receiver state on some chips).
func driveWorkload(s Side, dev nic.Model, ops eqOps) (nic.Status, error) {
	var snap nic.Status
	if err := s.Initialize(); err != nil {
		return snap, fmt.Errorf("initialize: %w", err)
	}
	if _, _, err := s.Query(guestos.OIDMACAddress, 6); err != nil {
		return snap, fmt.Errorf("query mac: %w", err)
	}
	if _, err := s.Set(guestos.OIDPacketFilter, ops.filterNormal); err != nil {
		return snap, fmt.Errorf("set filter: %w", err)
	}
	if _, err := s.Set(guestos.OIDMulticastList, ops.mcast); err != nil {
		return snap, fmt.Errorf("set multicast: %w", err)
	}
	for i, f := range ops.sends {
		if _, err := s.Send(f); err != nil {
			return snap, fmt.Errorf("send %d: %w", i, err)
		}
		if _, err := s.Pump(16); err != nil {
			return snap, fmt.Errorf("pump after send %d: %w", i, err)
		}
	}
	for i, f := range ops.inbound {
		if !dev.InjectRX(f) {
			return snap, fmt.Errorf("device dropped inbound frame %d", i)
		}
		if _, err := s.Pump(16); err != nil {
			return snap, fmt.Errorf("pump after rx %d: %w", i, err)
		}
	}
	if _, err := s.Set(guestos.OIDPacketFilter, ops.filterPromisc); err != nil {
		return snap, fmt.Errorf("set promisc: %w", err)
	}
	if _, err := s.Set(guestos.OIDFullDuplex, []byte{1, 0, 0, 0}); err != nil {
		return snap, fmt.Errorf("set duplex: %w", err)
	}
	snap = dev.StatusReport()
	if err := s.FireTimer(); err != nil {
		return snap, fmt.Errorf("timer: %w", err)
	}
	if err := s.Halt(); err != nil {
		return snap, fmt.Errorf("halt: %w", err)
	}
	return snap, nil
}

// CompareTraces compares two hardware I/O traces op by op, then by
// length. It returns ("", true) when they are identical, and a
// description of the first mismatch otherwise — the oracle shared by
// the equivalence checker and the differential fuzzer.
func CompareTraces(orig, synth []IOEvent) (string, bool) {
	n := len(orig)
	if len(synth) < n {
		n = len(synth)
	}
	for i := 0; i < n; i++ {
		if orig[i] != synth[i] {
			return fmt.Sprintf("op %d: orig %+v vs synth %+v", i, orig[i], synth[i]), false
		}
	}
	if len(orig) != len(synth) {
		return fmt.Sprintf("length: orig %d vs synth %d", len(orig), len(synth)), false
	}
	return "", true
}

// CheckEquivalence runs the §5.2 methodology for one driver: exercise
// the original and the synthesized driver with the same workload on
// identical device models and compare the hardware I/O traces, then
// probe each Table 2 feature on the synthesized driver.
func CheckEquivalence(info *drivers.Info, rev *Reversed, osKind template.OS) (*FeatureReport, error) {
	mac := [6]byte{0x02, 0x5E, 0x44, 0x33, 0x22, 0x11}
	ops := makeEqOps(mac)

	origTrace, _, origOS, err := runOriginal(info, ops)
	if err != nil {
		return nil, fmt.Errorf("original run: %w", err)
	}
	synthTrace, snap, synthDev, rt, err := runSynthesized(rev, info, osKind, ops)
	if err != nil {
		return nil, fmt.Errorf("synthesized run: %w", err)
	}

	rep := &FeatureReport{
		Driver:   info.Name,
		OrigOps:  len(origTrace),
		SynthOps: len(synthTrace),
	}
	rep.FirstDivergence, rep.IOTraceEqual = CompareTraces(origTrace, synthTrace)

	// Functional results on the synthesized side. snap was taken
	// mid-workload (after the feature sets, before halt); the final
	// status confirms clean shutdown.
	final := synthDev.StatusReport()
	rep.InitShutdown = !final.RxEnabled // halted cleanly at the end
	rep.SendReceive = len(rt.Received) == len(ops.inbound)
	for i, f := range rt.Received {
		if i < len(ops.inbound) && !bytes.Equal(f, ops.inbound[i]) {
			rep.SendReceive = false
		}
	}
	rep.Multicast = snap.MulticastHash != [8]byte{}
	rep.Promiscuous = snap.Promiscuous
	rep.FullDuplex = snap.FullDuplex
	rep.GetSetMAC = snap.MAC == mac

	// Cross-check against the original side's OS observations.
	if origOS.SendCompletes != rt.SendCompletes {
		rep.SendReceive = false
	}

	// Chip-dependent rows.
	rep.DMA = "N/A"
	if info.HasDMA {
		rep.DMA = "yes"
	}
	rep.WakeOnLAN = "N/A"
	rep.LED = "N/T"
	switch info.Name {
	case "RTL8139":
		// Exercisable: set WOL and LED through the synthesized
		// driver and observe CONFIG1.
		if _, err := runFeatureProbe(rev, info, mac); err == nil {
			rep.WakeOnLAN = "yes"
			rep.LED = "yes"
		} else {
			rep.WakeOnLAN = "FAIL"
			rep.LED = "FAIL"
		}
	case "AMD PCNet":
		rep.WakeOnLAN = "N/T" // code exercised, virtual HW can't wake
	case "SMSC 91C111":
		if _, err := runLEDProbe(rev, info, mac); err == nil {
			rep.LED = "yes"
		}
	}
	return rep, nil
}

// runFeatureProbe verifies WOL+LED on a synthesized RTL8139.
func runFeatureProbe(rev *Reversed, info *drivers.Info, mac [6]byte) (*FeatureReport, error) {
	bus := hw.NewBus()
	cfgp := ShellConfig(info)
	d, _ := rev.NewSyntheticDriver(template.Windows, bus, cfgp)
	dev, err := NewDevice(info.Name, &bus.Line, d, mac)
	if err != nil {
		return nil, err
	}
	bus.Attach(dev.(hw.Device), cfgp)
	if err := d.Initialize(); err != nil {
		return nil, err
	}
	if _, err := d.Set(guestos.OIDEnableWOL, []byte{1, 0, 0, 0}); err != nil {
		return nil, err
	}
	if _, err := d.Set(guestos.OIDLEDControl, []byte{1, 0, 0, 0}); err != nil {
		return nil, err
	}
	st := dev.StatusReport()
	if !st.WOLEnabled || !st.LEDOn {
		return nil, fmt.Errorf("WOL/LED not reflected: %+v", st)
	}
	return nil, nil
}

// runLEDProbe verifies the LED path on a synthesized 91C111.
func runLEDProbe(rev *Reversed, info *drivers.Info, mac [6]byte) (*FeatureReport, error) {
	bus := hw.NewBus()
	cfgp := ShellConfig(info)
	d, _ := rev.NewSyntheticDriver(template.Windows, bus, cfgp)
	dev, err := NewDevice(info.Name, &bus.Line, d, mac)
	if err != nil {
		return nil, err
	}
	bus.Attach(dev.(hw.Device), cfgp)
	if err := d.Initialize(); err != nil {
		return nil, err
	}
	if _, err := d.Set(guestos.OIDLEDControl, []byte{1, 0, 0, 0}); err != nil {
		return nil, err
	}
	if !dev.StatusReport().LEDOn {
		return nil, fmt.Errorf("LED not reflected")
	}
	return nil, nil
}
