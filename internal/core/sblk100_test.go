package core

import (
	"testing"

	"revnic/internal/template"
)

// TestSBLK100Equivalence runs the full pipeline on the corpus-growth
// block controller: symbolic exploration of the original binary, CFG
// recovery, synthesis, and the §5.2 trace-equivalence check. The
// NIC-specific feature rows (multicast, promiscuous, duplex) are
// intentionally not asserted — a block device has none of them.
func TestSBLK100Equivalence(t *testing.T) {
	info, rev := reverse(t, "SBLK100")
	if cov := rev.Coverage(); cov < 0.80 {
		t.Errorf("coverage %.1f%% < 80%%", cov*100)
	}
	rep, err := CheckEquivalence(info, rev, template.Windows)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IOTraceEqual {
		t.Errorf("I/O traces diverge: %s (orig %d ops, synth %d ops)",
			rep.FirstDivergence, rep.OrigOps, rep.SynthOps)
	}
	if rep.OrigOps < 20 {
		t.Errorf("suspiciously few I/O ops: %d", rep.OrigOps)
	}
	if !rep.InitShutdown {
		t.Error("init/shutdown not reproduced")
	}
	if !rep.SendReceive {
		t.Error("send/receive not reproduced")
	}
	if !rep.GetSetMAC {
		t.Error("serial (station address) not reproduced")
	}
}
