// Package trace implements the RevNIC wiretap (§3.3): it records, for
// every translation block the driver executes, the block's IR, the
// processor registers at block entry and exit, the type of every
// memory access (regular memory vs. device-mapped vs. DMA), and the
// transferred data, plus markers for calls, returns, OS API
// invocations and asynchronous events.
//
// The collector merges the records of all explored execution paths as
// they are produced, which is exactly the information the CFG builder
// (package cfg) and the code synthesizer (package synth) consume.
package trace

import (
	"fmt"
	"sort"

	"revnic/internal/ir"
)

// Class classifies a memory access, the distinction that is
// "notoriously difficult to do statically on architectures like x86"
// (§2) and trivial for the VM-based wiretap.
type Class uint8

// Access classes.
const (
	ClassRegular Class = iota
	ClassPortIO
	ClassMMIO
	ClassDMA
)

// String returns a short tag for the class.
func (c Class) String() string {
	switch c {
	case ClassRegular:
		return "mem"
	case ClassPortIO:
		return "port"
	case ClassMMIO:
		return "mmio"
	case ClassDMA:
		return "dma"
	}
	return "?"
}

// Access is one recorded memory or I/O access.
type Access struct {
	InstrAddr uint32
	Addr      uint32
	Size      int
	Write     bool
	Class     Class
	// Value is the transferred data; for symbolic values this is a
	// solver-concretized witness and Symbolic is set.
	Value    uint32
	Symbolic bool
}

// EdgeKind classifies an observed control transfer between blocks.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeFallthrough EdgeKind = iota
	EdgeBranch
	EdgeCall
	EdgeReturn
	EdgeAsync // transition into/out of an asynchronous event handler
)

// Edge is one observed control transfer.
type Edge struct {
	From uint32 // address of the terminator instruction
	To   uint32
	Kind EdgeKind
}

// BlockInfo aggregates everything observed about one translation
// block across all paths.
type BlockInfo struct {
	Block *ir.Block
	// Count is the number of times the block executed (all paths);
	// this counter drives the paper's state-selection heuristic.
	Count int64
	// IO records hardware accesses performed by instructions of this
	// block (deduplicated by instruction and class).
	IO []Access
	// TouchesOS is set if the block calls an OS API function.
	TouchesOS bool
	// RegsInSample/RegsOutSample are one recorded register snapshot
	// pair (entry/exit), used for async-event detection and
	// debugging.
	RegsInSample  [8]uint32
	RegsOutSample [8]uint32
}

// APICallRecord is one OS API invocation observed at the boundary.
type APICallRecord struct {
	CallSite uint32
	Index    uint32
	Name     string
	// Args holds concretized argument witnesses.
	Args []uint32
}

// Collector is the wiretap sink. It is not safe for concurrent use;
// the engine is single-threaded like the original RevNIC prototype.
type Collector struct {
	Blocks map[uint32]*BlockInfo
	Edges  map[Edge]int64
	// Calls maps call-site -> callee for guest-internal calls.
	Calls map[uint32]map[uint32]bool
	// APICalls are the OS-boundary invocations.
	APICalls []APICallRecord
	// AsyncEntries are the first block addresses of asynchronous
	// events (interrupt/timer handlers), detected by the engine when
	// it injects them; the CFG builder treats them like function
	// roots (§4.1: detected "by checking for register value changes
	// between two consecutively executed translation blocks").
	AsyncEntries map[uint32]bool
	// EntryPoints maps the address of each exercised driver entry
	// point to its role name (init, send, isr, ...).
	EntryPoints map[uint32]string
	// FuncParams records, per function entry, the highest parameter
	// slot observed being read from the parent stack frame — the
	// def-use evidence of §4.1 ("memory accesses whose addresses are
	// computed by adding an offset to the stack frame pointer,
	// resulting in an access to the stack frame of the parent
	// function").
	FuncParams map[uint32]int
	// FuncReturns records functions whose return register was
	// observed being used by a caller without an intervening
	// redefinition (§4.1's return-value liveness check).
	FuncReturns map[uint32]bool

	ioSeen map[ioKey]bool
}

type ioKey struct {
	instr uint32
	class Class
	write bool
}

// NewCollector returns an empty wiretap sink.
func NewCollector() *Collector {
	return &Collector{
		Blocks:       map[uint32]*BlockInfo{},
		Edges:        map[Edge]int64{},
		Calls:        map[uint32]map[uint32]bool{},
		AsyncEntries: map[uint32]bool{},
		EntryPoints:  map[uint32]string{},
		FuncParams:   map[uint32]int{},
		FuncReturns:  map[uint32]bool{},
		ioSeen:       map[ioKey]bool{},
	}
}

// Param records that function fn read its n-th (0-based) stack
// parameter.
func (c *Collector) Param(fn uint32, n int) {
	if n+1 > c.FuncParams[fn] {
		c.FuncParams[fn] = n + 1
	}
}

// Returns records that fn's return value was consumed by a caller.
func (c *Collector) Returns(fn uint32) { c.FuncReturns[fn] = true }

// Block records one execution of a translation block.
func (c *Collector) Block(b *ir.Block, regsIn, regsOut [8]uint32) *BlockInfo {
	bi := c.Blocks[b.Addr]
	if bi == nil {
		bi = &BlockInfo{Block: b, RegsInSample: regsIn, RegsOutSample: regsOut}
		c.Blocks[b.Addr] = bi
	}
	bi.Count++
	return bi
}

// IO records a hardware access within a block, deduplicated per
// instruction/class/direction.
func (c *Collector) IO(bi *BlockInfo, a Access) {
	k := ioKey{a.InstrAddr, a.Class, a.Write}
	if !c.ioSeen[k] {
		c.ioSeen[k] = true
		bi.IO = append(bi.IO, a)
	}
}

// Edge records a control transfer.
func (c *Collector) Edge(from, to uint32, kind EdgeKind) {
	c.Edges[Edge{from, to, kind}]++
}

// Call records a guest-internal function call.
func (c *Collector) Call(site, target uint32) {
	m := c.Calls[site]
	if m == nil {
		m = map[uint32]bool{}
		c.Calls[site] = m
	}
	m[target] = true
}

// API records an OS API invocation from the given call site and marks
// the containing block as OS-touching.
func (c *Collector) API(bi *BlockInfo, rec APICallRecord) {
	if bi != nil {
		bi.TouchesOS = true
	}
	c.APICalls = append(c.APICalls, rec)
}

// Async marks addr as the start of an asynchronous event handler.
func (c *Collector) Async(addr uint32) { c.AsyncEntries[addr] = true }

// Entry marks addr as a named driver entry point.
func (c *Collector) Entry(addr uint32, role string) { c.EntryPoints[addr] = role }

// CoveredBlocks returns the number of distinct translation-block
// start addresses executed.
func (c *Collector) CoveredBlocks() int { return len(c.Blocks) }

// BlockCount returns the execution count of the block at addr (0 if
// never executed); the min-count heuristic queries this.
func (c *Collector) BlockCount(addr uint32) int64 {
	if bi := c.Blocks[addr]; bi != nil {
		return bi.Count
	}
	return 0
}

// Merge folds another collector's records into c, as if o's
// executions had been observed after c's own. Per-block data merges
// in ascending address order and slice-valued records (IO points, API
// calls) keep o's internal order, so the merged collector depends
// only on the argument sequence — the parallel exploration mode
// merges worker collectors in seed order to keep results identical to
// a serial run. o must not be used concurrently with the merge.
func (c *Collector) Merge(o *Collector) {
	for _, addr := range o.SortedBlockAddrs() {
		ob := o.Blocks[addr]
		bi := c.Blocks[addr]
		if bi == nil {
			bi = &BlockInfo{Block: ob.Block, RegsInSample: ob.RegsInSample, RegsOutSample: ob.RegsOutSample}
			c.Blocks[addr] = bi
		}
		bi.Count += ob.Count
		if ob.TouchesOS {
			bi.TouchesOS = true
		}
		for _, a := range ob.IO {
			k := ioKey{a.InstrAddr, a.Class, a.Write}
			if !c.ioSeen[k] {
				c.ioSeen[k] = true
				bi.IO = append(bi.IO, a)
			}
		}
	}
	for e, n := range o.Edges {
		c.Edges[e] += n
	}
	for site, targets := range o.Calls {
		for t := range targets {
			c.Call(site, t)
		}
	}
	c.APICalls = append(c.APICalls, o.APICalls...)
	for a := range o.AsyncEntries {
		c.AsyncEntries[a] = true
	}
	for a, role := range o.EntryPoints {
		c.EntryPoints[a] = role
	}
	for fn, n := range o.FuncParams {
		if n > c.FuncParams[fn] {
			c.FuncParams[fn] = n
		}
	}
	for fn := range o.FuncReturns {
		c.FuncReturns[fn] = true
	}
}

// SortedBlockAddrs returns all executed block addresses in ascending
// order, for deterministic iteration.
func (c *Collector) SortedBlockAddrs() []uint32 {
	addrs := make([]uint32, 0, len(c.Blocks))
	for a := range c.Blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Summary renders collection statistics.
func (c *Collector) Summary() string {
	io := 0
	for _, b := range c.Blocks {
		io += len(b.IO)
	}
	return fmt.Sprintf("blocks=%d edges=%d api-calls=%d io-points=%d async=%d",
		len(c.Blocks), len(c.Edges), len(c.APICalls), io, len(c.AsyncEntries))
}
