package trace

import (
	"fmt"
	"sort"

	"revnic/internal/ir"
)

// Wire form of a Collector, for the distributed exploration mode: a
// peer node that executed a shard group ships its wiretap records back
// to the coordinator, which folds them in with the same Merge the
// in-process fork-join uses. The encoding is faithful and
// order-preserving — block tables sort by address, slice-valued
// records (IO points, API calls) keep their observation order — so a
// decoded collector merges exactly like the worker collector it was
// encoded from, which is what keeps coordinator results bit-identical
// to a single-node run.
//
// Translation blocks are not serialized: they are a pure function of
// the driver image, so the decoder resolves each block address through
// the coordinator's own translation cache. That also keeps the
// coordinator's translated-block accounting identical to a single-node
// run, where one shared cache translates every distinct block exactly
// once no matter which worker executed it first.

// WireBlock is one BlockInfo without the ir.Block pointer.
type WireBlock struct {
	Addr      uint32    `json:"addr"`
	Count     int64     `json:"count"`
	IO        []Access  `json:"io,omitempty"`
	TouchesOS bool      `json:"touches_os,omitempty"`
	RegsIn    [8]uint32 `json:"regs_in"`
	RegsOut   [8]uint32 `json:"regs_out"`
}

// WireEdge is one observed control transfer with its count.
type WireEdge struct {
	From  uint32   `json:"from"`
	To    uint32   `json:"to"`
	Kind  EdgeKind `json:"kind"`
	Count int64    `json:"count"`
}

// WireCall is one call-site -> callee pair.
type WireCall struct {
	Site   uint32 `json:"site"`
	Target uint32 `json:"target"`
}

// WireCollector is the serialized form of a Collector.
type WireCollector struct {
	Blocks       []WireBlock       `json:"blocks,omitempty"`
	Edges        []WireEdge        `json:"edges,omitempty"`
	Calls        []WireCall        `json:"calls,omitempty"`
	APICalls     []APICallRecord   `json:"api_calls,omitempty"`
	AsyncEntries []uint32          `json:"async,omitempty"`
	EntryPoints  map[uint32]string `json:"entries,omitempty"`
	FuncParams   map[uint32]int    `json:"params,omitempty"`
	FuncReturns  []uint32          `json:"returns,omitempty"`
}

// Encode serializes the collector. Map-backed records are emitted in
// sorted key order so the encoding is deterministic.
func (c *Collector) Encode() *WireCollector {
	w := &WireCollector{
		APICalls:    c.APICalls,
		EntryPoints: c.EntryPoints,
		FuncParams:  c.FuncParams,
	}
	for _, addr := range c.SortedBlockAddrs() {
		bi := c.Blocks[addr]
		w.Blocks = append(w.Blocks, WireBlock{
			Addr: addr, Count: bi.Count, IO: bi.IO, TouchesOS: bi.TouchesOS,
			RegsIn: bi.RegsInSample, RegsOut: bi.RegsOutSample,
		})
	}
	edges := make([]Edge, 0, len(c.Edges))
	for e := range c.Edges {
		edges = append(edges, e)
	}
	sortEdges(edges)
	for _, e := range edges {
		w.Edges = append(w.Edges, WireEdge{From: e.From, To: e.To, Kind: e.Kind, Count: c.Edges[e]})
	}
	for _, site := range sortedKeys32(c.Calls) {
		for _, t := range sortedKeysBool(c.Calls[site]) {
			w.Calls = append(w.Calls, WireCall{Site: site, Target: t})
		}
	}
	w.AsyncEntries = sortedKeysBool(c.AsyncEntries)
	w.FuncReturns = sortedKeysBool(c.FuncReturns)
	return w
}

// BlockResolver turns a block address back into its translation block;
// the coordinator passes its engine's cache lookup.
type BlockResolver func(addr uint32) (*ir.Block, error)

// Decode rebuilds a collector from its wire form, resolving block
// addresses through resolve. It fails (rather than dropping records)
// on addresses that no longer translate — that means the request and
// the image went out of sync, and a silently incomplete wiretap would
// corrupt the synthesized driver downstream.
func (w *WireCollector) Decode(resolve BlockResolver) (*Collector, error) {
	c := NewCollector()
	for _, wb := range w.Blocks {
		b, err := resolve(wb.Addr)
		if err != nil {
			return nil, fmt.Errorf("trace: decode block %#x: %w", wb.Addr, err)
		}
		bi := &BlockInfo{
			Block: b, Count: wb.Count, TouchesOS: wb.TouchesOS,
			RegsInSample: wb.RegsIn, RegsOutSample: wb.RegsOut,
		}
		bi.IO = append(bi.IO, wb.IO...)
		for _, a := range wb.IO {
			c.ioSeen[ioKey{a.InstrAddr, a.Class, a.Write}] = true
		}
		c.Blocks[wb.Addr] = bi
	}
	for _, e := range w.Edges {
		c.Edges[Edge{From: e.From, To: e.To, Kind: e.Kind}] = e.Count
	}
	for _, call := range w.Calls {
		c.Call(call.Site, call.Target)
	}
	c.APICalls = append(c.APICalls, w.APICalls...)
	for _, a := range w.AsyncEntries {
		c.AsyncEntries[a] = true
	}
	for a, role := range w.EntryPoints {
		c.EntryPoints[a] = role
	}
	for fn, n := range w.FuncParams {
		c.FuncParams[fn] = n
	}
	for _, fn := range w.FuncReturns {
		c.FuncReturns[fn] = true
	}
	return c, nil
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
}

func sortedKeys32[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeysBool(m map[uint32]bool) []uint32 {
	return sortedKeys32(m)
}
