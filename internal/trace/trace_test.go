package trace

import (
	"testing"

	"revnic/internal/ir"
	"revnic/internal/isa"
)

func mkBlock(addr uint32, n int) *ir.Block {
	b := &ir.Block{Addr: addr}
	for i := 0; i < n-1; i++ {
		b.Instrs = append(b.Instrs, isa.Instr{Op: isa.NOP})
	}
	b.Instrs = append(b.Instrs, isa.Instr{Op: isa.RET})
	return b
}

func TestBlockCounting(t *testing.T) {
	c := NewCollector()
	b := mkBlock(0x1000, 3)
	var regs [8]uint32
	bi := c.Block(b, regs, regs)
	c.Block(b, regs, regs)
	if bi.Count != 2 {
		t.Errorf("count = %d", bi.Count)
	}
	if c.BlockCount(0x1000) != 2 || c.BlockCount(0x9999) != 0 {
		t.Error("BlockCount wrong")
	}
	if c.CoveredBlocks() != 1 {
		t.Error("CoveredBlocks")
	}
	c.Block(mkBlock(0x2000, 1), regs, regs)
	addrs := c.SortedBlockAddrs()
	if len(addrs) != 2 || addrs[0] != 0x1000 || addrs[1] != 0x2000 {
		t.Errorf("SortedBlockAddrs = %v", addrs)
	}
}

func TestIODeduplication(t *testing.T) {
	c := NewCollector()
	var regs [8]uint32
	bi := c.Block(mkBlock(0x1000, 2), regs, regs)
	a := Access{InstrAddr: 0x1000, Addr: 0xC000, Size: 1, Class: ClassPortIO}
	c.IO(bi, a)
	c.IO(bi, a) // same instruction, same class: deduplicated
	aw := a
	aw.Write = true
	c.IO(bi, aw) // same instruction, other direction: kept
	if len(bi.IO) != 2 {
		t.Errorf("IO entries = %d, want 2", len(bi.IO))
	}
}

func TestEdgesCallsAndMarkers(t *testing.T) {
	c := NewCollector()
	c.Edge(0x10, 0x20, EdgeBranch)
	c.Edge(0x10, 0x20, EdgeBranch)
	c.Edge(0x10, 0x30, EdgeFallthrough)
	if c.Edges[Edge{0x10, 0x20, EdgeBranch}] != 2 {
		t.Error("edge count")
	}
	c.Call(0x40, 0x100)
	c.Call(0x40, 0x200) // indirect call site with two targets
	if len(c.Calls[0x40]) != 2 {
		t.Error("call targets")
	}
	c.Async(0x500)
	c.Entry(0x600, "send")
	if !c.AsyncEntries[0x500] || c.EntryPoints[0x600] != "send" {
		t.Error("markers")
	}
}

func TestDefUseRecording(t *testing.T) {
	c := NewCollector()
	c.Param(0x100, 0)
	c.Param(0x100, 2)
	c.Param(0x100, 1) // lower than the max: must not regress
	if c.FuncParams[0x100] != 3 {
		t.Errorf("params = %d, want 3", c.FuncParams[0x100])
	}
	c.Returns(0x100)
	if !c.FuncReturns[0x100] {
		t.Error("returns")
	}
}

func TestAPIRecordMarksBlock(t *testing.T) {
	c := NewCollector()
	var regs [8]uint32
	bi := c.Block(mkBlock(0x1000, 2), regs, regs)
	c.API(bi, APICallRecord{CallSite: 0x1000, Index: 3, Name: "NdisFoo", Args: []uint32{1}})
	if !bi.TouchesOS {
		t.Error("block not marked OS-touching")
	}
	if len(c.APICalls) != 1 || c.APICalls[0].Name != "NdisFoo" {
		t.Error("API log")
	}
	// nil block info must not panic (calls outside known blocks).
	c.API(nil, APICallRecord{Index: 1, Name: "X"})
}

func TestClassStrings(t *testing.T) {
	for cl, want := range map[Class]string{
		ClassRegular: "mem", ClassPortIO: "port", ClassMMIO: "mmio", ClassDMA: "dma",
	} {
		if cl.String() != want {
			t.Errorf("%d.String() = %s", cl, cl.String())
		}
	}
	if c := NewCollector(); c.Summary() == "" {
		t.Error("summary")
	}
}
