package difffuzz

// Minimize shrinks a divergence-producing schedule to a shortest
// reproducer using delta debugging (ddmin): repeatedly drop chunks of
// steps, keeping any reduction that still diverges, halving chunk
// size until single steps. Every trial re-executes the candidate on
// fresh rigs, so the minimized schedule is a standalone reproducer.
// Minimization is deterministic: trial order depends only on the
// input schedule. maxTrials bounds the work (200 is plenty for
// MaxSteps-sized schedules).
func Minimize(h *Harness, s Schedule, maxTrials int) (Schedule, int) {
	trials := 0
	diverges := func(steps []Step) bool {
		if trials >= maxTrials {
			return false
		}
		trials++
		out := h.RunSchedule(Schedule{ID: s.ID, Steps: steps})
		return out.Divergence != nil
	}

	steps := s.Steps
	chunk := (len(steps) + 1) / 2
	for trials < maxTrials && len(steps) > 1 {
		reduced := false
		for start := 0; start < len(steps) && len(steps) > 1; {
			end := start + chunk
			if end > len(steps) {
				end = len(steps)
			}
			cand := make([]Step, 0, len(steps)-(end-start))
			cand = append(cand, steps[:start]...)
			cand = append(cand, steps[end:]...)
			if len(cand) > 0 && diverges(cand) {
				steps = cand
				// Re-test the same position: the next chunk shifted
				// into this slot.
				reduced = true
			} else {
				start = end
			}
		}
		if chunk == 1 {
			if !reduced {
				break
			}
			continue // another single-step pass until stable
		}
		chunk = (chunk + 1) / 2
	}
	return Schedule{ID: s.ID, Steps: steps}, trials
}
