// Package difffuzz is the differential fuzzing subsystem: it drives
// the synthesized driver and the original binary side by side on
// randomized — but fully reproducible — schedules of register, DMA
// and interrupt activity, and diffs their observable behavior through
// the same trace oracle the §5.2 equivalence checker uses. Where the
// equivalence checker replays one fixed workload, the fuzzer explores
// the workload space: schedules that reach new hardware-access
// patterns seed further mutation, and any divergence is minimized to
// a shortest reproducer.
//
// Determinism is load-bearing, as everywhere in this repo: the same
// seed produces the same schedules, the same coverage, and the same
// divergence report for any worker count, so a CI failure replays
// exactly on a laptop.
package difffuzz

import (
	"fmt"

	"revnic/internal/guestos"
)

// Step is one operation in a fuzz schedule. Op selects the operation;
// the remaining fields parameterize it and are ignored by ops that do
// not use them.
type Step struct {
	// Op is one of "send", "recv", "query", "set", "timer", "pump".
	Op string `json:"op"`
	// Size is the frame length for send/recv.
	Size int `json:"size,omitempty"`
	// Fill seeds the frame payload pattern for send/recv.
	Fill byte `json:"fill,omitempty"`
	// Bcast addresses the frame to ff:ff:ff:ff:ff:ff instead of the
	// device's own station address.
	Bcast bool `json:"bcast,omitempty"`
	// OID is the object identifier for query/set.
	OID uint32 `json:"oid,omitempty"`
	// Val is the 32-bit little-endian payload for set, and the
	// requested buffer size for query.
	Val uint32 `json:"val,omitempty"`
}

// Schedule is one reproducible workload: a sequence of steps applied
// identically to the original and the synthesized driver.
type Schedule struct {
	ID    uint64 `json:"id"`
	Steps []Step `json:"steps"`
}

func (s Schedule) String() string {
	return fmt.Sprintf("schedule %#x (%d steps)", s.ID, len(s.Steps))
}

// prng is splitmix64: tiny, fast, and — unlike math/rand — guaranteed
// stable across Go releases. Every consumer receives its own
// explicitly-seeded instance; there is no global randomness anywhere
// in the fuzzer.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng { return &prng{state: seed} }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(p.next() % uint64(n))
}

// oidPool is the OID vocabulary for query/set steps: every OID the
// guest kernel shim knows, plus one the drivers have never seen — the
// failure path must also match across sides.
var oidPool = []uint32{
	guestos.OIDMACAddress,
	guestos.OIDLinkSpeed,
	guestos.OIDMediaStatus,
	guestos.OIDPacketFilter,
	guestos.OIDMulticastList,
	guestos.OIDEnableWOL,
	guestos.OIDFullDuplex,
	guestos.OIDLEDControl,
	0x0000DEAD,
}

// frameSizes biases send/recv lengths toward the interesting
// boundaries: minimum, maximum, off-by-one on either side, and a few
// mid-range values. Invalid lengths are deliberately included — both
// drivers must reject them identically.
var frameSizes = []int{0, 13, 14, 15, 60, 64, 96, 256, 512, 1024, 1500, 1514, 1515, 1600}

var stepOps = []string{"send", "recv", "query", "set", "timer", "pump"}

// opWeights biases generation toward the data path (send/recv carry
// most of the protocol) while keeping control-plane ops in the mix.
var opWeights = map[string]int{
	"send": 4, "recv": 4, "query": 2, "set": 2, "timer": 1, "pump": 2,
}

func randomStep(rng *prng) Step {
	total := 0
	for _, op := range stepOps {
		total += opWeights[op]
	}
	pick := rng.intn(total)
	var op string
	for _, o := range stepOps {
		if pick < opWeights[o] {
			op = o
			break
		}
		pick -= opWeights[o]
	}
	st := Step{Op: op}
	switch op {
	case "send", "recv":
		st.Size = frameSizes[rng.intn(len(frameSizes))]
		st.Fill = byte(rng.next())
		st.Bcast = rng.intn(2) == 0
	case "query":
		st.OID = oidPool[rng.intn(len(oidPool))]
		st.Val = uint32(2 + rng.intn(14)) // requested buffer size
	case "set":
		st.OID = oidPool[rng.intn(len(oidPool))]
		st.Val = uint32(rng.next())
	}
	return st
}

// generate builds the n-th schedule of a round, either fresh or by
// mutating a corpus entry. The result depends only on (seed, round,
// index) and the corpus content at the start of the round — never on
// execution order — which is what makes the fuzzer worker-count
// independent.
func generate(seed uint64, round, index int, maxSteps int, corpus []Schedule) Schedule {
	id := scheduleID(seed, round, index)
	rng := newPRNG(id)
	var steps []Step
	if len(corpus) > 0 && rng.intn(3) > 0 { // 2/3 mutate, 1/3 fresh
		parent := corpus[rng.intn(len(corpus))]
		steps = mutate(rng, parent.Steps, maxSteps)
	} else {
		n := 1 + rng.intn(maxSteps)
		steps = make([]Step, 0, n)
		for i := 0; i < n; i++ {
			steps = append(steps, randomStep(rng))
		}
	}
	return Schedule{ID: id, Steps: steps}
}

// scheduleID derives a stable 64-bit identity for the (seed, round,
// index) cell; it doubles as the PRNG seed for the schedule's content.
func scheduleID(seed uint64, round, index int) uint64 {
	h := newPRNG(seed)
	h.state ^= uint64(round)*0x100000001B3 + uint64(index)
	return h.next()
}

// mutate derives a child schedule from parent steps: a small number
// of point edits — replace, insert, delete, duplicate-tail.
func mutate(rng *prng, parent []Step, maxSteps int) []Step {
	steps := append([]Step(nil), parent...)
	edits := 1 + rng.intn(3)
	for e := 0; e < edits; e++ {
		switch rng.intn(4) {
		case 0: // replace one step
			if len(steps) > 0 {
				steps[rng.intn(len(steps))] = randomStep(rng)
			}
		case 1: // insert a step
			if len(steps) < maxSteps {
				at := rng.intn(len(steps) + 1)
				steps = append(steps[:at], append([]Step{randomStep(rng)}, steps[at:]...)...)
			}
		case 2: // delete a step
			if len(steps) > 1 {
				at := rng.intn(len(steps))
				steps = append(steps[:at], steps[at+1:]...)
			}
		case 3: // duplicate a step in place (retry loops, double-pumps)
			if len(steps) > 0 && len(steps) < maxSteps {
				at := rng.intn(len(steps))
				steps = append(steps[:at], append([]Step{steps[at]}, steps[at:]...)...)
			}
		}
	}
	if len(steps) > maxSteps {
		steps = steps[:maxSteps]
	}
	return steps
}
