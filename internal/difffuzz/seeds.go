package difffuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SeedFile is the on-disk schedule format (examples/fuzz/*.json): a
// device name, a template OS, and a list of hand-written schedules.
// The same format is emitted for minimized reproducers, so any
// divergence report can be replayed with `revfuzz -replay`.
type SeedFile struct {
	Device    string     `json:"device"`
	OS        string     `json:"os,omitempty"`
	Schedules []Schedule `json:"schedules"`
}

// LoadSeedFile parses one schedule file.
func LoadSeedFile(path string) (*SeedFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf SeedFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("difffuzz: %s: %w", path, err)
	}
	if sf.Device == "" {
		return nil, fmt.Errorf("difffuzz: %s: missing device", path)
	}
	for i, s := range sf.Schedules {
		if len(s.Steps) == 0 {
			return nil, fmt.Errorf("difffuzz: %s: schedule %d has no steps", path, i)
		}
		for j, st := range s.Steps {
			if !validOp(st.Op) {
				return nil, fmt.Errorf("difffuzz: %s: schedule %d step %d: unknown op %q", path, i, j, st.Op)
			}
		}
	}
	return &sf, nil
}

func validOp(op string) bool {
	for _, o := range stepOps {
		if o == op {
			return true
		}
	}
	return false
}

// LoadSeedDir collects the schedules for one device from every .json
// file in dir, in sorted filename order (determinism again).
func LoadSeedDir(dir, device string) ([]Schedule, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []Schedule
	for _, p := range paths {
		sf, err := LoadSeedFile(p)
		if err != nil {
			return nil, err
		}
		if sf.Device == device {
			out = append(out, sf.Schedules...)
		}
	}
	return out, nil
}
