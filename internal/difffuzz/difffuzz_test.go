package difffuzz

import (
	"encoding/json"
	"testing"

	"revnic/internal/template"
)

var harnessCache = map[string]*Harness{}

func harnessFor(t *testing.T, device, plant string) *Harness {
	t.Helper()
	key := device + "|" + plant
	if h, ok := harnessCache[key]; ok {
		return h
	}
	h, err := NewHarness(device, template.Windows, plant)
	if err != nil {
		t.Fatal(err)
	}
	harnessCache[key] = h
	return h
}

// TestScheduleGenerationDeterministic pins that schedule content is a
// pure function of (seed, round, index, corpus).
func TestScheduleGenerationDeterministic(t *testing.T) {
	corpus := []Schedule{generate(1, 0, 0, 12, nil)}
	for i := 0; i < 8; i++ {
		a := generate(42, 3, i, 12, corpus)
		b := generate(42, 3, i, 12, corpus)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("index %d: schedules differ:\n%s\n%s", i, aj, bj)
		}
		if len(a.Steps) == 0 || len(a.Steps) > 12 {
			t.Fatalf("index %d: %d steps", i, len(a.Steps))
		}
	}
	if generate(42, 3, 0, 12, corpus).ID == generate(43, 3, 0, 12, corpus).ID {
		t.Error("different seeds produced the same schedule ID")
	}
}

// TestCleanDriverNoDivergence fuzzes a correctly-synthesized NIC
// driver: the fuzzer must find no behavioral difference, and the run
// must reach meaningful coverage.
func TestCleanDriverNoDivergence(t *testing.T) {
	h := harnessFor(t, "RTL8029", "")
	rep, err := Fuzz(h, Config{Device: "RTL8029", Seed: 11, Budget: 48, MaxSteps: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("false positive: %s", d.String())
	}
	if len(rep.Errors) > 0 {
		t.Errorf("harness errors: %v", rep.Errors)
	}
	if rep.CoverageKeys < 50 {
		t.Errorf("only %d coverage keys; the generator is not exercising the driver", rep.CoverageKeys)
	}
	if rep.CorpusSize == 0 {
		t.Error("no schedule earned corpus admission; coverage feedback is dead")
	}
}

// TestCleanBlockDeviceNoDivergence does the same on the block
// controller, whose protocol (LBA registers, 16-bit data port,
// IDENTIFY) is entirely different from the NICs.
func TestCleanBlockDeviceNoDivergence(t *testing.T) {
	h := harnessFor(t, "SBLK100", "")
	rep, err := Fuzz(h, Config{Device: "SBLK100", Seed: 5, Budget: 48, MaxSteps: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("false positive: %s", d.String())
	}
	if len(rep.Errors) > 0 {
		t.Errorf("harness errors: %v", rep.Errors)
	}
}

// TestWorkerCountIndependence is the load-bearing determinism pin:
// the same seed must produce byte-identical reports for 1, 2 and 8
// workers.
func TestWorkerCountIndependence(t *testing.T) {
	h := harnessFor(t, "SBLK100", "")
	var first []byte
	for _, workers := range []int{1, 2, 8} {
		rep, err := Fuzz(h, Config{
			Device: "SBLK100", Seed: 99, Budget: 32, MaxSteps: 8, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		j, _ := json.MarshalIndent(rep, "", " ")
		if first == nil {
			first = j
		} else if string(first) != string(j) {
			t.Fatalf("report differs between worker counts:\n--- workers=1\n%s\n--- workers=%d\n%s",
				first, workers, j)
		}
	}
}

// TestPlantedBugFoundAndMinimized is the subsystem's acceptance test:
// a synthetic port-offset bug planted in the synthesized block-device
// driver must be found within a CI-sized budget and minimized to a
// short reproducer.
func TestPlantedBugFoundAndMinimized(t *testing.T) {
	h := harnessFor(t, "SBLK100", "send-port")
	rep, err := Fuzz(h, Config{Device: "SBLK100", Seed: 1, Budget: 64, MaxSteps: 10, Plant: "send-port"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) == 0 {
		t.Fatalf("planted bug not found in %d schedules", rep.Schedules)
	}
	d := rep.Divergences[0]
	if d.Kind != "trace" {
		t.Errorf("divergence kind %q, want trace (the planted bug shifts a port write)", d.Kind)
	}
	if d.Minimized == nil {
		t.Fatal("no minimized reproducer")
	}
	if n := len(d.Minimized.Steps); n > 10 {
		t.Errorf("minimized reproducer has %d steps, want <= 10", n)
	}
	// The minimized schedule must still reproduce standalone.
	out := h.RunSchedule(*d.Minimized)
	if out.Divergence == nil {
		t.Error("minimized schedule does not reproduce the divergence")
	}
	// A send must be involved — the bug is in the send path.
	hasSend := false
	for _, st := range d.Minimized.Steps {
		if st.Op == "send" {
			hasSend = true
		}
	}
	if !hasSend {
		t.Errorf("minimized reproducer %v has no send step", d.Minimized.Steps)
	}
}

// TestPlantedBugOnNIC checks the planted-bug machinery generalizes
// beyond the block device.
func TestPlantedBugOnNIC(t *testing.T) {
	h := harnessFor(t, "RTL8029", "send-port")
	rep, err := Fuzz(h, Config{Device: "RTL8029", Seed: 1, Budget: 64, MaxSteps: 10, Plant: "send-port"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) == 0 {
		t.Fatalf("planted bug not found in %d schedules", rep.Schedules)
	}
}

// TestRunSchedulePanicRecovered pins that a panicking schedule
// executor surfaces as Outcome.Err, never as a crash — the property
// the job-runner pool depends on.
func TestRunSchedulePanicRecovered(t *testing.T) {
	h := harnessFor(t, "SBLK100", "")
	out := h.RunSchedule(Schedule{ID: 1, Steps: []Step{{Op: "bogus-op"}}})
	if out.Err == "" {
		t.Error("unknown op did not surface as an outcome error")
	}
	// A genuinely panicking step: Size beyond MaxFrame is handled by
	// the drivers, so force a panic through a nil schedule step op on
	// an empty harness path instead — the recover path itself is
	// exercised via a synthetic runner.
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic escaped RunSchedule: %v", r)
			}
		}()
		_ = h.RunSchedule(Schedule{ID: 2, Steps: []Step{{Op: "send", Size: -1}}})
	}()
}

// TestMinimizeIsDeterministic pins that minimization of the same
// divergence always lands on the same reproducer.
func TestMinimizeIsDeterministic(t *testing.T) {
	h := harnessFor(t, "SBLK100", "send-port")
	sched := Schedule{ID: 7, Steps: []Step{
		{Op: "query", OID: 0x01010102, Val: 6},
		{Op: "pump"},
		{Op: "send", Size: 64, Fill: 3},
		{Op: "recv", Size: 96},
		{Op: "send", Size: 600, Fill: 9, Bcast: true},
		{Op: "timer"},
	}}
	if h.RunSchedule(sched).Divergence == nil {
		t.Fatal("seed schedule does not diverge on the planted bug")
	}
	a, atr := Minimize(h, sched, 200)
	b, btr := Minimize(h, sched, 200)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) || atr != btr {
		t.Fatalf("minimization not deterministic: %s (%d trials) vs %s (%d trials)", aj, atr, bj, btr)
	}
	if len(a.Steps) > 2 {
		t.Errorf("minimized to %d steps, expected <= 2 (one send suffices)", len(a.Steps))
	}
}
