package difffuzz

import (
	"fmt"
	"sync"

	"revnic/internal/template"
)

// Config parameterizes one differential fuzzing run.
type Config struct {
	// Device names the corpus driver to fuzz.
	Device string
	// OS selects the synthesized-side template (Windows if zero).
	OS template.OS
	// Seed randomizes the schedule stream; the same seed reproduces
	// the run bit-identically for any Workers value.
	Seed int64
	// Budget is the total number of schedules to execute (default
	// 256). Minimization trials are not counted against it.
	Budget int
	// MaxSteps bounds schedule length (default 12).
	MaxSteps int
	// Workers sets executor parallelism (default GOMAXPROCS via the
	// round batch size; results are independent of this value).
	Workers int
	// Plant injects a synthetic synthesis bug (see PlantKinds).
	Plant string
	// MaxDivergences stops the run early once this many distinct
	// divergences were found and minimized (default 4).
	MaxDivergences int
	// SkipMinimize disables reproducer minimization.
	SkipMinimize bool
	// Seeds are schedules executed (and admitted to the mutation
	// corpus on new coverage) before the generated stream — typically
	// loaded from examples/fuzz/. They count against Budget.
	Seeds []Schedule
	// Stop aborts the run at the next round boundary when closed.
	Stop <-chan struct{}
	// RunBatch, when set, executes a batch of schedules remotely (the
	// cluster seam); nil runs them on the local harness. Outcomes
	// must be returned in input order.
	RunBatch func(round int, batch []Schedule) ([]Outcome, error)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Budget <= 0 {
		out.Budget = 256
	}
	if out.MaxSteps <= 0 {
		out.MaxSteps = 12
	}
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.MaxDivergences <= 0 {
		out.MaxDivergences = 4
	}
	return out
}

// Report is the structured result of a fuzzing run.
type Report struct {
	Device string `json:"device"`
	Seed   int64  `json:"seed"`
	Plant  string `json:"plant,omitempty"`
	// Schedules is the number of schedules executed (excluding
	// minimization trials).
	Schedules int `json:"schedules"`
	// CoverageKeys is the size of the merged hardware-access edge
	// coverage map.
	CoverageKeys int `json:"coverage_keys"`
	// CorpusSize counts schedules that earned a place in the mutation
	// corpus by reaching new coverage.
	CorpusSize int `json:"corpus_size"`
	// Unexplored counts schedules that drove the synthesized driver
	// into code the exploration never reached.
	Unexplored int `json:"unexplored"`
	// Divergences are the confirmed behavioral differences, each with
	// a minimized reproducer when minimization ran.
	Divergences []Divergence `json:"divergences,omitempty"`
	// Errors are harness-level failures (recovered panics included).
	Errors []string `json:"errors,omitempty"`
}

// Fuzz runs the differential fuzzing loop on an already-built
// harness. Each round generates a batch of schedules purely from
// (seed, round, index) and the corpus snapshot at the round start,
// executes them (in parallel locally, or remotely through
// cfg.RunBatch), and merges results in index order — so the coverage
// map, corpus growth and divergence list are bit-identical for any
// worker count or shard layout.
func Fuzz(h *Harness, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Device: h.Info.Name, Seed: cfg.Seed, Plant: cfg.Plant}
	seed := uint64(cfg.Seed)

	covered := map[uint64]bool{}
	var corpus []Schedule
	seenDiv := map[string]bool{} // dedup by kind+detail

	// merge folds one batch's outcomes into the run state, strictly
	// in index order: corpus admission and divergence dedup depend on
	// iteration order. Returns false once MaxDivergences is reached.
	merge := func(batch []Schedule, outs []Outcome) bool {
		for i, out := range outs {
			rep.Schedules++
			if out.Err != "" {
				rep.Errors = append(rep.Errors, out.Err)
				continue
			}
			if out.Unexplored {
				rep.Unexplored++
			}
			fresh := false
			for _, k := range out.CovKeys {
				if !covered[k] {
					covered[k] = true
					fresh = true
				}
			}
			if fresh {
				corpus = append(corpus, batch[i])
			}
			if d := out.Divergence; d != nil {
				key := d.Kind + "|" + d.Detail
				if seenDiv[key] {
					continue
				}
				seenDiv[key] = true
				if !cfg.SkipMinimize {
					min, trials := Minimize(h, d.Schedule, 200)
					d.Minimized = &min
					d.MinimizeTrials = trials
				}
				rep.Divergences = append(rep.Divergences, *d)
				if len(rep.Divergences) >= cfg.MaxDivergences {
					return false
				}
			}
		}
		return true
	}
	finish := func() (*Report, error) {
		rep.CoverageKeys, rep.CorpusSize = len(covered), len(corpus)
		return rep, nil
	}

	// The batch size is fixed — NOT derived from Workers — because it
	// shapes the (round, index) schedule stream and the corpus
	// snapshot boundaries. Workers only parallelize execution inside
	// a batch.
	const batchSize = 16

	runBatch := func(round int, batch []Schedule) ([]Outcome, error) {
		if cfg.RunBatch != nil {
			outs, err := cfg.RunBatch(round, batch)
			if err != nil {
				return nil, fmt.Errorf("difffuzz: round %d: %w", round, err)
			}
			if len(outs) != len(batch) {
				return nil, fmt.Errorf("difffuzz: round %d: %d outcomes for %d schedules", round, len(outs), len(batch))
			}
			return outs, nil
		}
		return RunBatch(h, batch, cfg.Workers), nil
	}

	// Seed schedules run first (round -1) and feed the corpus.
	if len(cfg.Seeds) > 0 {
		seeds := cfg.Seeds
		if len(seeds) > cfg.Budget {
			seeds = seeds[:cfg.Budget]
		}
		outs, err := runBatch(-1, seeds)
		if err != nil {
			return rep, err
		}
		if !merge(seeds, outs) {
			return finish()
		}
	}

	for round := 0; rep.Schedules < cfg.Budget; round++ {
		select {
		case <-cfg.Stop:
			return finish()
		default:
		}
		n := batchSize
		if left := cfg.Budget - rep.Schedules; n > left {
			n = left
		}
		batch := make([]Schedule, n)
		for i := range batch {
			batch[i] = generate(seed, round, i, cfg.MaxSteps, corpus)
		}
		outs, err := runBatch(round, batch)
		if err != nil {
			return rep, err
		}
		if !merge(batch, outs) {
			return finish()
		}
	}
	return finish()
}

// RunBatch executes a batch of schedules on the harness with the
// given parallelism, returning outcomes in input order. It is the
// local executor for Fuzz and the peer-side executor for cluster
// fuzz shards.
func RunBatch(h *Harness, batch []Schedule, workers int) []Outcome {
	if workers <= 0 {
		workers = 1
	}
	outs := make([]Outcome, len(batch))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outs[i] = h.RunSchedule(batch[i])
			}
		}()
	}
	for i := range batch {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return outs
}

// Run builds a harness and fuzzes it: the one-call entry point used
// by the CLI and the job service.
func Run(cfg Config) (*Report, error) {
	h, err := NewHarness(cfg.Device, cfg.OS, cfg.Plant)
	if err != nil {
		return nil, err
	}
	return Fuzz(h, cfg)
}
