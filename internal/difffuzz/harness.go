package difffuzz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"revnic/internal/cfg"
	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/isa"
	"revnic/internal/symexec"
	"revnic/internal/synthdrv"
	"revnic/internal/template"
)

// PlantKinds lists the supported synthetic-bug kinds for -plant /
// FuzzSpec.Plant. An empty kind means "no bug".
var PlantKinds = []string{"send-port"}

// ValidPlant reports whether kind is a known planted-bug kind.
func ValidPlant(kind string) bool {
	if kind == "" {
		return true
	}
	for _, k := range PlantKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Harness holds one reverse-engineered driver ready for differential
// execution: the original binary image and the recovered graph the
// synthesized driver interprets. Exploration runs once per harness
// (with a fixed engine seed, so the recovered graph is canonical);
// every schedule then executes on fresh rigs, so schedules are fully
// independent and order does not matter.
type Harness struct {
	Info *drivers.Info
	Rev  *core.Reversed
	OS   template.OS
	mac  [6]byte
}

// NewHarness reverse engineers the named corpus driver and, if plant
// is non-empty, injects a synthetic synthesis bug of that kind into
// the recovered graph (the original binary is untouched — the fuzzer
// must find the discrepancy).
func NewHarness(device string, osKind template.OS, plant string) (*Harness, error) {
	info, err := drivers.ByName(device)
	if err != nil {
		return nil, err
	}
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell:      core.ShellConfig(info),
		DriverName: info.Name,
		// Fixed engine seed: the fuzz seed randomizes schedules, not
		// the recovered graph, which must be canonical.
		Engine: symexec.Config{Seed: 7},
	})
	if err != nil {
		return nil, fmt.Errorf("difffuzz: reverse %s: %w", device, err)
	}
	if plant != "" {
		if err := PlantBug(rev.Graph, plant); err != nil {
			return nil, err
		}
	}
	return &Harness{
		Info: info,
		Rev:  rev,
		OS:   osKind,
		mac:  [6]byte{0x02, 0x5E, 0x44, 0x33, 0x22, 0x11},
	}, nil
}

// PlantBug injects a known synthesis defect into a recovered graph,
// used to validate that the fuzzer actually catches divergences.
//
//	send-port: the first port write in the send-role function is
//	shifted to an adjacent register — the classic off-by-one a buggy
//	lifter produces, invisible to any check that does not execute
//	the code.
func PlantBug(g *cfg.Graph, kind string) error {
	switch kind {
	case "send-port":
		var send *cfg.Function
		for _, f := range g.SortedFuncs() {
			if f.Role == "send" {
				send = f
				break
			}
		}
		if send == nil {
			return errors.New("difffuzz: plant send-port: no send-role function recovered")
		}
		for _, b := range send.SortedBlocks() {
			for i, ins := range b.Instrs {
				switch ins.Op {
				case isa.OUT8, isa.OUT16, isa.OUT32:
					// Blocks are shared with g.Blocks, so the
					// interpreter-backed synthesized driver sees the
					// mutation; the original binary does not.
					b.Instrs[i].Imm ^= 1
					return nil
				}
			}
		}
		return errors.New("difffuzz: plant send-port: send function performs no port writes")
	}
	return fmt.Errorf("difffuzz: unknown plant kind %q", kind)
}

// Outcome is the result of running one schedule differentially. It is
// JSON-serializable so cluster shards can return batches of outcomes
// to the coordinator.
type Outcome struct {
	ScheduleID uint64 `json:"schedule_id"`
	Steps      int    `json:"steps"`
	// CovKeys are the hardware-access edge-coverage keys the original
	// side hit; the coordinator merges them into the global map.
	CovKeys []uint64 `json:"cov_keys,omitempty"`
	// Unexplored means the synthesized driver hit a branch the
	// exploration never reached. That is an incompleteness warning
	// (§4.1), not a divergence: the synthesized code matched the
	// original on everything it executed.
	Unexplored bool `json:"unexplored,omitempty"`
	// Err records a harness-level failure (including a recovered
	// panic in either driver) — reported, never fatal to the run.
	Err string `json:"err,omitempty"`
	// Divergence is non-nil when observable behavior differed.
	Divergence *Divergence `json:"divergence,omitempty"`
}

// Divergence describes one observable behavioral difference between
// the original and the synthesized driver.
type Divergence struct {
	Device string `json:"device"`
	// Kind classifies the difference:
	//
	//	trace     — hardware I/O traces differ op-for-op
	//	length    — one side performed extra hardware ops
	//	status    — an operation returned different NDIS status
	//	query-out — a query returned different bytes
	//	op-error  — one side failed an operation the other completed
	//	rx-accept — the device accepted a frame for one side only
	//	tx-data   — transmitted frames differ
	Kind string `json:"kind"`
	// Step is the index of the schedule step that exposed the
	// difference; -1 means initialization, len(Steps) means halt.
	Step   int    `json:"step"`
	StepOp string `json:"step_op,omitempty"`
	Detail string `json:"detail"`
	// Schedule reproduces the divergence from a fresh harness.
	Schedule Schedule `json:"schedule"`
	// Minimized is the shortest reproducer found by ddmin, when
	// minimization ran.
	Minimized *Schedule `json:"minimized,omitempty"`
	// MinimizeTrials counts schedule executions minimization spent.
	MinimizeTrials int `json:"minimize_trials,omitempty"`
}

func (d *Divergence) String() string {
	s := fmt.Sprintf("%s: %s at step %d (%s): %s", d.Device, d.Kind, d.Step, d.StepOp, d.Detail)
	if d.Minimized != nil {
		s += fmt.Sprintf(" [minimized to %d steps in %d trials]", len(d.Minimized.Steps), d.MinimizeTrials)
	}
	return s
}

// RunSchedule executes one schedule on a fresh original rig and a
// fresh synthesized rig, comparing observable behavior step by step.
// A panic in either driver is recovered into Outcome.Err — one bad
// schedule must never take down a fuzzing run or a job runner.
func (h *Harness) RunSchedule(s Schedule) (out Outcome) {
	out = Outcome{ScheduleID: s.ID, Steps: len(s.Steps)}
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			out.Err = fmt.Sprintf("panic executing %s: %v\n%s", s, r, buf)
		}
	}()

	orig, err := core.NewOriginalRig(h.Info, h.mac)
	if err != nil {
		out.Err = fmt.Sprintf("original rig: %v", err)
		return out
	}
	synth, err := core.NewSynthRig(h.Rev, h.Info, h.OS, h.mac)
	if err != nil {
		out.Err = fmt.Sprintf("synth rig: %v", err)
		return out
	}

	ex := &execution{h: h, orig: orig, synth: synth, out: &out}

	if ex.both(-1, "init", func(s core.Side) (uint32, []byte, error) {
		return 0, nil, s.Initialize()
	}) {
		for i, st := range s.Steps {
			if !ex.step(i, st) {
				break
			}
		}
		if ex.out.Divergence == nil && !ex.out.Unexplored && ex.out.Err == "" {
			ex.both(len(s.Steps), "halt", func(s core.Side) (uint32, []byte, error) {
				return 0, nil, s.Halt()
			})
			ex.compareStatus(len(s.Steps))
		}
	}
	// Final full-trace comparison catches trailing extra ops.
	if ex.out.Divergence == nil && ex.out.Err == "" && !ex.out.Unexplored {
		if detail, ok := core.CompareTraces(orig.Trace(), synth.Trace()); !ok {
			ex.diverge(len(s.Steps), "halt", "length", detail)
		}
	}
	out.CovKeys = coverageKeys(orig.Trace())
	if out.Divergence != nil {
		out.Divergence.Schedule = s
	}
	return out
}

// execution carries the per-schedule comparison state.
type execution struct {
	h      *Harness
	orig   *core.Rig
	synth  *core.Rig
	out    *Outcome
	cursor int // ops of the traces already compared
}

func (ex *execution) diverge(step int, op, kind, detail string) {
	if ex.out.Divergence == nil {
		ex.out.Divergence = &Divergence{
			Device: ex.h.Info.Name, Kind: kind, Step: step, StepOp: op, Detail: detail,
		}
	}
}

// both applies one operation to the two sides and compares status,
// output bytes, errors, and the hardware traces the op produced.
// It returns false when the schedule should stop (divergence found,
// unexplored code hit, or matching failures on both sides).
func (ex *execution) both(step int, op string, f func(core.Side) (uint32, []byte, error)) bool {
	oSt, oOut, oErr := f(ex.orig.Side)
	sSt, sOut, sErr := f(ex.synth.Side)

	var unexp *synthdrv.ErrUnexplored
	if errors.As(sErr, &unexp) {
		// Prefix check first: an unexplored hit after the traces
		// already diverged is still a divergence.
		if !ex.comparePrefix(step, op) {
			return false
		}
		ex.out.Unexplored = true
		return false
	}
	if (oErr == nil) != (sErr == nil) {
		ex.diverge(step, op, "op-error",
			fmt.Sprintf("orig err=%v, synth err=%v", oErr, sErr))
		return false
	}
	if oErr != nil {
		// Both sides failed identically (e.g. a stuck interrupt
		// line): stop the schedule, no divergence.
		return false
	}
	if oSt != sSt {
		ex.diverge(step, op, "status",
			fmt.Sprintf("orig status %#x, synth status %#x", oSt, sSt))
		return false
	}
	if !bytes.Equal(oOut, sOut) {
		ex.diverge(step, op, "query-out",
			fmt.Sprintf("orig % x, synth % x", oOut, sOut))
		return false
	}
	return ex.comparePrefix(step, op)
}

// comparePrefix diffs the not-yet-compared region of the two traces.
// The synthesized trace may legitimately be shorter mid-schedule only
// when the driver stopped at unexplored code, which both() handles
// before calling here; a value mismatch in the common prefix is
// always a real divergence.
func (ex *execution) comparePrefix(step int, op string) bool {
	ot, st := ex.orig.Trace(), ex.synth.Trace()
	n := len(ot)
	if len(st) < n {
		n = len(st)
	}
	for i := ex.cursor; i < n; i++ {
		if ot[i] != st[i] {
			ex.diverge(step, op, "trace",
				fmt.Sprintf("op %d: orig %+v vs synth %+v", i, ot[i], st[i]))
			return false
		}
	}
	ex.cursor = n
	return true
}

func (ex *execution) compareStatus(step int) {
	if ex.out.Divergence != nil {
		return
	}
	o, s := ex.orig.Dev.StatusReport(), ex.synth.Dev.StatusReport()
	if o != s {
		ex.diverge(step, "halt", "status",
			fmt.Sprintf("device status orig %+v, synth %+v", o, s))
	}
}

// step applies one schedule step to both sides.
func (ex *execution) step(i int, st Step) bool {
	switch st.Op {
	case "send":
		frame := ex.h.buildFrame(st)
		if !ex.both(i, "send", func(s core.Side) (uint32, []byte, error) {
			stat, err := s.Send(frame)
			return stat, nil, err
		}) {
			return false
		}
		if !ex.pump(i, "send") {
			return false
		}
		// Transmitted payloads must match byte for byte.
		oTx, sTx := ex.orig.Dev.TxFrames(), ex.synth.Dev.TxFrames()
		if len(oTx) != len(sTx) {
			ex.diverge(i, "send", "tx-data",
				fmt.Sprintf("orig transmitted %d frames, synth %d", len(oTx), len(sTx)))
			return false
		}
		for j := range oTx {
			if !bytes.Equal(oTx[j], sTx[j]) {
				ex.diverge(i, "send", "tx-data",
					fmt.Sprintf("tx frame %d differs: orig %d bytes, synth %d bytes", j, len(oTx[j]), len(sTx[j])))
				return false
			}
		}
		return true
	case "recv":
		frame := ex.h.buildFrame(st)
		oAcc := ex.orig.Dev.InjectRX(frame)
		sAcc := ex.synth.Dev.InjectRX(frame)
		if oAcc != sAcc {
			ex.diverge(i, "recv", "rx-accept",
				fmt.Sprintf("orig accepted=%v, synth accepted=%v (len %d)", oAcc, sAcc, len(frame)))
			return false
		}
		if !oAcc {
			return true // both dropped; nothing to pump
		}
		return ex.pump(i, "recv")
	case "query":
		return ex.both(i, "query", func(s core.Side) (uint32, []byte, error) {
			return s.Query(st.OID, st.Val)
		})
	case "set":
		var in [4]byte
		binary.LittleEndian.PutUint32(in[:], st.Val)
		return ex.both(i, "set", func(s core.Side) (uint32, []byte, error) {
			stat, err := s.Set(st.OID, in[:])
			return stat, nil, err
		})
	case "timer":
		return ex.both(i, "timer", func(s core.Side) (uint32, []byte, error) {
			return 0, nil, s.FireTimer()
		})
	case "pump":
		return ex.pump(i, "pump")
	default:
		ex.out.Err = fmt.Sprintf("unknown step op %q", st.Op)
		return false
	}
}

func (ex *execution) pump(i int, op string) bool {
	return ex.both(i, op, func(s core.Side) (uint32, []byte, error) {
		n, err := s.Pump(16)
		return uint32(n), nil, err
	})
}

// buildFrame constructs the deterministic frame for a send/recv step.
func (h *Harness) buildFrame(st Step) []byte {
	f := make([]byte, st.Size)
	dst := h.mac
	if st.Bcast {
		dst = [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	}
	copy(f, dst[:])
	if st.Size > 6 {
		copy(f[6:], h.mac[:])
	}
	if st.Size > 13 {
		f[12], f[13] = 0x08, 0x00
	}
	for i := 14; i < st.Size; i++ {
		f[i] = st.Fill + byte(i*7)
	}
	return f
}

// coverageKeys reduces a hardware trace to edge-coverage keys: each
// consecutive pair of accesses hashes (port-space, direction, address,
// width) of both ops — values are deliberately excluded so payload
// bytes don't explode the key space. New keys mean the schedule made
// the driver touch hardware in a new pattern.
func coverageKeys(tr []core.IOEvent) []uint64 {
	seen := map[uint64]bool{}
	keys := make([]uint64, 0, len(tr))
	prev := uint64(0)
	for _, ev := range tr {
		h := uint64(14695981039346656037)
		mix := func(v uint64) {
			h ^= v
			h *= 1099511628211
		}
		if ev.Port {
			mix(1)
		}
		if ev.Write {
			mix(2)
		}
		mix(uint64(ev.Addr))
		mix(uint64(ev.Size))
		mix(prev)
		prev = h
		if !seen[h] {
			seen[h] = true
			keys = append(keys, h)
		}
	}
	return keys
}
