// Package cfg rebuilds the control flow graph of the reverse
// engineered driver from the merged wiretap traces (§4.1 of the
// paper): function boundaries are identified from call/return pairs,
// translation blocks are split into basic blocks at observed jump
// targets, asynchronous handlers become their own roots, and def-use
// evidence from the traces determines parameter counts and return
// values.
package cfg

import (
	"fmt"
	"sort"

	"revnic/internal/isa"
	"revnic/internal/trace"
)

// BasicBlock is one reconstructed basic block.
type BasicBlock struct {
	Addr   uint32
	Instrs []isa.Instr
	// Succs are the intra-function successor addresses in the
	// recovered graph (call targets excluded; the fallthrough after
	// a call is a successor).
	Succs []uint32
	// Unexplored lists successor addresses that were never executed:
	// "Incompleteness manifests in the generated source by branches
	// to unexercised code. RevNIC flags such branches to warn the
	// developer" (§4.1).
	Unexplored []uint32
	// IO are the hardware accesses recorded for this block's
	// instructions.
	IO []trace.Access
	// TouchesOS marks blocks that invoke OS API functions.
	TouchesOS bool
	// Count is the merged execution count.
	Count int64
}

// EndAddr returns the address one past the block's last instruction.
func (b *BasicBlock) EndAddr() uint32 {
	return b.Addr + uint32(len(b.Instrs))*isa.InstrSize
}

// Term returns the final instruction.
func (b *BasicBlock) Term() isa.Instr { return b.Instrs[len(b.Instrs)-1] }

// Function is one recovered driver function.
type Function struct {
	Entry uint32
	// Role is the entry-point role if this function was registered
	// with the OS ("initialize", "send", "isr", ...), else "".
	Role string
	// Async marks interrupt/timer handlers.
	Async bool
	// Blocks maps address to basic block, all reachable from Entry.
	Blocks map[uint32]*BasicBlock
	// Callees are the functions this one calls.
	Callees []uint32
	// NumParams and HasReturn come from the def-use analysis.
	NumParams int
	HasReturn bool
	// PopBytes is the callee argument cleanup observed in the
	// function's RET instructions (stdcall); generated call sites
	// restore the virtual stack by this amount.
	PopBytes uint32
	// HasHW / HasOS classify the function for the Figure 9
	// breakdown: HW-only and pure-algorithm functions are fully
	// synthesizable; OS-calling functions need template integration.
	HasHW bool
	HasOS bool
}

// Name synthesizes the identifier used in generated code.
func (f *Function) Name() string {
	if f.Role != "" {
		return fmt.Sprintf("mp_%s_%x", f.Role, f.Entry)
	}
	return fmt.Sprintf("function_%x", f.Entry)
}

// SortedBlocks returns the function's blocks in address order.
func (f *Function) SortedBlocks() []*BasicBlock {
	out := make([]*BasicBlock, 0, len(f.Blocks))
	for _, b := range f.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Graph is the recovered whole-driver CFG.
type Graph struct {
	Funcs map[uint32]*Function
	// Blocks is the global basic-block map (blocks may be shared by
	// functions if traces revealed overlapping code).
	Blocks map[uint32]*BasicBlock
}

// SortedFuncs returns functions in entry-address order.
func (g *Graph) SortedFuncs() []*Function {
	out := make([]*Function, 0, len(g.Funcs))
	for _, f := range g.Funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// Build reconstructs the CFG from merged traces.
func Build(col *trace.Collector) *Graph {
	g := &Graph{Funcs: map[uint32]*Function{}, Blocks: map[uint32]*BasicBlock{}}

	// 1. Collect all split points: every observed block start and
	// every observed control-transfer target.
	splits := map[uint32]bool{}
	for a := range col.Blocks {
		splits[a] = true
	}
	for e := range col.Edges {
		splits[e.To] = true
	}

	// 2. Split translation blocks into basic blocks. Overlapping
	// translation blocks reduce to identical basic blocks, so keyed
	// insertion deduplicates them. Address order keeps the build a
	// pure function of the trace contents (map order must not leak
	// into which variant's IO records a merged block keeps).
	for _, a := range col.SortedBlockAddrs() {
		bi := col.Blocks[a]
		tb := bi.Block
		start := 0
		for i := range tb.Instrs {
			addr := tb.InstrAddr(i)
			if i != start && splits[addr] {
				g.addBasicBlock(col, bi, tb.InstrAddr(start), tb.Instrs[start:i])
				start = i
			}
		}
		g.addBasicBlock(col, bi, tb.InstrAddr(start), tb.Instrs[start:])
	}

	// 3. Successors and unexplored branches.
	for _, b := range g.Blocks {
		g.linkBlock(col, b)
	}

	// 4. Function roots: observed call targets, registered entry
	// points, async handlers.
	roots := map[uint32]bool{}
	for _, targets := range col.Calls {
		for t := range targets {
			roots[t] = true
		}
	}
	for a := range col.EntryPoints {
		roots[a] = true
	}
	for a := range col.AsyncEntries {
		roots[a] = true
	}
	for root := range roots {
		if g.Blocks[root] == nil {
			continue // registered but never executed
		}
		f := &Function{
			Entry:  root,
			Role:   col.EntryPoints[root],
			Async:  col.AsyncEntries[root],
			Blocks: map[uint32]*BasicBlock{},
		}
		g.Funcs[root] = f
		g.assignBlocks(f, roots)
		f.NumParams = col.FuncParams[root]
		f.HasReturn = col.FuncReturns[root]
		// Entry points return their status/context to the OS, which
		// the wiretap cannot observe consuming; the OS interface
		// documentation says they return values (§3.2).
		if f.Role != "" {
			f.HasReturn = true
		}
		for _, b := range f.Blocks {
			if t := b.Term(); t.Op == isa.RET && t.Imm > f.PopBytes {
				f.PopBytes = t.Imm
			}
		}
		calleeSet := map[uint32]bool{}
		for _, b := range f.Blocks {
			if len(b.IO) > 0 {
				f.HasHW = true
			}
			if b.TouchesOS {
				f.HasOS = true
			}
			t := b.Term()
			if t.Op == isa.CALL && roots[t.Imm] {
				calleeSet[t.Imm] = true
			}
			if t.Op == isa.CALLR {
				for site, targets := range col.Calls {
					if site == b.InstrAddrOfTerm() {
						for tgt := range targets {
							calleeSet[tgt] = true
						}
					}
				}
			}
		}
		f.Callees = sortedKeys(calleeSet)
	}
	return g
}

// InstrAddrOfTerm returns the address of the block's terminator.
func (b *BasicBlock) InstrAddrOfTerm() uint32 {
	return b.Addr + uint32(len(b.Instrs)-1)*isa.InstrSize
}

func sortedKeys(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *Graph) addBasicBlock(col *trace.Collector, bi *trace.BlockInfo, addr uint32, instrs []isa.Instr) {
	if len(instrs) == 0 {
		return
	}
	merged := bi.Count
	touchesOS := bi.TouchesOS
	var oldIO []trace.Access
	if old := g.Blocks[addr]; old != nil {
		// Keep the longer variant; counts, OS-call marks and IO
		// records merge either way so the result does not depend on
		// insertion order. Merging IO matters because the collector
		// dedups accesses globally per instruction — a record lives
		// in exactly one translation-block variant, and dropping the
		// losing variant's records would lose hardware accesses.
		if len(instrs) <= len(old.Instrs) {
			old.Count += bi.Count
			old.TouchesOS = old.TouchesOS || bi.TouchesOS
			mergeIO(old, bi.IO)
			return
		}
		merged += old.Count
		touchesOS = touchesOS || old.TouchesOS
		oldIO = old.IO
	}
	b := &BasicBlock{Addr: addr, Instrs: instrs, Count: merged, TouchesOS: touchesOS}
	end := b.EndAddr()
	for _, a := range bi.IO {
		if a.InstrAddr >= addr && a.InstrAddr < end {
			b.IO = append(b.IO, a)
		}
	}
	mergeIO(b, oldIO)
	g.Blocks[addr] = b
}

// mergeIO appends the in-range accesses of io not already present in
// b (same instruction, class and direction), preserving io's order.
func mergeIO(b *BasicBlock, io []trace.Access) {
	end := b.EndAddr()
	for _, a := range io {
		if a.InstrAddr < b.Addr || a.InstrAddr >= end {
			continue
		}
		dup := false
		for _, have := range b.IO {
			if have.InstrAddr == a.InstrAddr && have.Class == a.Class && have.Write == a.Write {
				dup = true
				break
			}
		}
		if !dup {
			b.IO = append(b.IO, a)
		}
	}
}

// linkBlock computes successors; targets never observed in the traces
// are flagged unexplored.
func (g *Graph) linkBlock(col *trace.Collector, b *BasicBlock) {
	add := func(to uint32) {
		if g.Blocks[to] != nil {
			b.Succs = append(b.Succs, to)
		} else {
			b.Unexplored = append(b.Unexplored, to)
		}
	}
	t := b.Term()
	switch t.Op {
	case isa.JMP:
		add(t.Imm)
	case isa.BR, isa.BRI:
		add(t.Imm)
		add(b.EndAddr())
	case isa.JR:
		// Observed indirect targets come from the edge set, in
		// address order (the edge set is a map).
		site := b.InstrAddrOfTerm()
		targets := map[uint32]bool{}
		for e := range col.Edges {
			if e.From == site {
				targets[e.To] = true
			}
		}
		for _, to := range sortedKeys(targets) {
			add(to)
		}
	case isa.CALL, isa.CALLR:
		// Control returns to the fallthrough; the callee is a
		// separate function.
		add(b.EndAddr())
	case isa.RET, isa.IRET, isa.HLT:
		// No intra-function successors.
	default:
		// Split block without terminator: straight-line successor.
		add(b.EndAddr())
	}
}

// assignBlocks walks intra-function edges from the function entry.
// Blocks that are themselves roots of other functions are not
// absorbed (tail-duplicated code would be, which matches how RevNIC
// chains translation blocks between call/return pairs).
func (g *Graph) assignBlocks(f *Function, roots map[uint32]bool) {
	work := []uint32{f.Entry}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		if _, done := f.Blocks[addr]; done {
			continue
		}
		b := g.Blocks[addr]
		if b == nil {
			continue
		}
		f.Blocks[addr] = b
		for _, s := range b.Succs {
			if s != f.Entry && roots[s] && s != addr {
				continue // flows into another function: stop
			}
			work = append(work, s)
		}
	}
}

// Stats summarizes a recovered graph.
type Stats struct {
	Funcs            int
	Blocks           int
	AutomatedFuncs   int // no OS interaction: fully synthesized
	ManualFuncs      int // call the OS: need template integration
	MixedFuncs       int // both hardware and OS access (type 3)
	UnexploredJumps  int
	HardwareAccesses int
}

// ComputeStats classifies the graph for the Figure 9 breakdown.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	s.Funcs = len(g.Funcs)
	s.Blocks = len(g.Blocks)
	for _, f := range g.Funcs {
		if f.HasOS {
			s.ManualFuncs++
			if f.HasHW {
				s.MixedFuncs++
			}
		} else {
			s.AutomatedFuncs++
		}
	}
	for _, b := range g.Blocks {
		s.UnexploredJumps += len(b.Unexplored)
		s.HardwareAccesses += len(b.IO)
	}
	return s
}
