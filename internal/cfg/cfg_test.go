package cfg

import (
	"testing"

	"revnic/internal/drivers"
	"revnic/internal/hw"
	"revnic/internal/symexec"
)

func explore(t *testing.T, name string) (*drivers.Info, *symexec.Result) {
	t.Helper()
	info, err := drivers.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	eng := symexec.New(info.Program, symexec.Config{
		Seed: 1,
		Shell: hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
			IOBase: 0xC000, IOSize: 0x100, IRQLine: 11},
	})
	res, err := eng.Explore()
	if err != nil {
		t.Fatal(err)
	}
	return info, res
}

func TestStaticGroundTruth(t *testing.T) {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		t.Fatal(err)
	}
	gt := Static(info.Program.Base, info.Program.Code)
	// Every ground-truth function symbol must be discovered.
	for _, f := range info.Program.Funcs {
		if !gt.FuncEntries[f.Addr] {
			t.Errorf("static analysis missed function %s at %#x", f.Name, f.Addr)
		}
	}
	if gt.NumBlocks() < 40 {
		t.Errorf("suspiciously few static blocks: %d", gt.NumBlocks())
	}
	if len(gt.SortedBlockStarts()) != gt.NumBlocks() {
		t.Error("SortedBlockStarts inconsistent")
	}
}

func TestRecoveredCFGMatchesGroundTruth(t *testing.T) {
	info, res := explore(t, "RTL8029")
	g := Build(res.Collector)

	// Function boundary recovery: every ground-truth function that
	// was executed must appear as a recovered function.
	recovered := map[uint32]bool{}
	for e := range g.Funcs {
		recovered[e] = true
	}
	missing := 0
	for _, f := range info.Program.Funcs {
		if res.Collector.Blocks[f.Addr] != nil && !recovered[f.Addr] {
			t.Errorf("executed function %s at %#x not recovered", f.Name, f.Addr)
			missing++
		}
	}
	// No spurious functions: every recovered entry must be a
	// ground-truth function.
	truth := map[uint32]bool{}
	for _, f := range info.Program.Funcs {
		truth[f.Addr] = true
	}
	for e := range g.Funcs {
		if !truth[e] {
			t.Errorf("spurious function recovered at %#x", e)
		}
	}

	// Block-level: recovered basic blocks must start at ground-truth
	// leaders.
	gt := Static(info.Program.Base, info.Program.Code)
	for a := range g.Blocks {
		if a >= info.Program.Base && a < info.Program.Base+uint32(info.Program.Size()) {
			if !gt.BlockStarts[a] {
				t.Errorf("recovered block at %#x is not a ground-truth leader", a)
			}
		}
	}

	// Coverage (Figure 8's end point): must exceed 80% as the paper
	// reports for all four drivers.
	covered := map[uint32]bool{}
	for a := range g.Blocks {
		covered[a] = true
	}
	cov := gt.Coverage(covered)
	if cov < 0.8 {
		t.Errorf("coverage %.0f%% < 80%%", cov*100)
	}
}

func TestDefUseRecovery(t *testing.T) {
	info, res := explore(t, "RTL8029")
	g := Build(res.Collector)

	find := func(name string) *Function {
		t.Helper()
		addr := info.Program.Sym(name)
		f := g.Funcs[addr]
		if f == nil {
			t.Fatalf("function %s at %#x not recovered", name, addr)
		}
		return f
	}

	// crc32_hash(macptr) has 1 parameter and a used return value.
	crc := find("crc32_hash")
	if crc.NumParams != 1 {
		t.Errorf("crc32_hash params = %d, want 1", crc.NumParams)
	}
	if !crc.HasReturn {
		t.Error("crc32_hash return value not detected")
	}
	// ne2k_setup_remote(iobase, addr, count) has 3 params, no return
	// value consumed.
	setup := find("ne2k_setup_remote")
	if setup.NumParams != 3 {
		t.Errorf("ne2k_setup_remote params = %d, want 3", setup.NumParams)
	}
	// mp_send(ctx, buf, len) has 3 params; its status return is
	// consumed by... the OS, not traced code, so no requirement.
	send := find("mp_send")
	if send.NumParams != 3 {
		t.Errorf("mp_send params = %d, want 3", send.NumParams)
	}
	// ne2k_presence's return feeds a branch in mp_initialize.
	if !find("ne2k_presence").HasReturn {
		t.Error("ne2k_presence return not detected")
	}
}

func TestFunctionClassification(t *testing.T) {
	info, res := explore(t, "RTL8029")
	g := Build(res.Collector)
	st := g.ComputeStats()
	if st.Funcs < 12 {
		t.Fatalf("only %d functions recovered", st.Funcs)
	}
	// Figure 9: roughly 70% of functions fully synthesized.
	frac := float64(st.AutomatedFuncs) / float64(st.Funcs)
	if frac < 0.5 || frac > 0.9 {
		t.Errorf("automated fraction %.0f%% outside plausible band", frac*100)
	}
	// Specific classifications.
	byName := func(name string) *Function { return g.Funcs[info.Program.Sym(name)] }
	if f := byName("ne2k_tx_kick"); f == nil || f.HasOS || !f.HasHW {
		t.Error("ne2k_tx_kick should be hardware-only")
	}
	if f := byName("crc32_hash"); f == nil || f.HasOS || f.HasHW {
		t.Error("crc32_hash should be pure algorithm")
	}
	if f := byName("ne2k_recv_drain"); f == nil || !f.HasOS || !f.HasHW {
		t.Error("ne2k_recv_drain should mix OS and hardware (type 3)")
	}
}

func TestCalleesAndRoles(t *testing.T) {
	info, res := explore(t, "RTL8029")
	g := Build(res.Collector)
	send := g.Funcs[info.Program.Sym("mp_send")]
	if send == nil {
		t.Fatal("mp_send missing")
	}
	if send.Role != "send" {
		t.Errorf("mp_send role = %q", send.Role)
	}
	wantCallee := info.Program.Sym("ne2k_tx_kick")
	found := false
	for _, c := range send.Callees {
		if c == wantCallee {
			found = true
		}
	}
	if !found {
		t.Errorf("mp_send callees %v missing ne2k_tx_kick %#x", send.Callees, wantCallee)
	}
}
