package cfg

import (
	"sort"

	"revnic/internal/isa"
)

// StaticGroundTruth performs recursive-descent disassembly of a
// driver binary to estimate the true set of basic-block start
// addresses. It is used only as the denominator of the coverage
// metric (Figure 8) and by tests that compare recovered CFGs against
// reality — the reverse engineering pipeline itself never consults
// it.
//
// Entry discovery mirrors what an analyst gets from a binary: the
// image entry point plus every MOVI immediate that lands on an
// instruction boundary inside the code (function pointers being
// registered with the OS).
type StaticGroundTruth struct {
	// BlockStarts is the set of basic-block start addresses.
	BlockStarts map[uint32]bool
	// FuncEntries is the set of discovered function entries.
	FuncEntries map[uint32]bool
}

// Static disassembles the image (base address and raw bytes).
func Static(base uint32, code []byte) *StaticGroundTruth {
	gt := &StaticGroundTruth{BlockStarts: map[uint32]bool{}, FuncEntries: map[uint32]bool{}}
	inCode := func(a uint32) bool {
		return a >= base && a < base+uint32(len(code)) && (a-base)%isa.InstrSize == 0
	}
	decode := func(a uint32) (isa.Instr, bool) {
		if !inCode(a) {
			return isa.Instr{}, false
		}
		in, err := isa.Decode(code[a-base:])
		if err != nil {
			return isa.Instr{}, false
		}
		return in, true
	}

	// Pass 1: seed entries — the image entry plus code-pointer
	// immediates reachable from it (conservatively: scan the whole
	// image for MOVI with in-code immediates; data sections decode
	// as garbage opcodes and are rejected).
	entries := map[uint32]bool{base: true}
	for a := base; inCode(a); a += isa.InstrSize {
		in, ok := decode(a)
		if !ok {
			continue
		}
		if in.Op == isa.MOVI && inCode(in.Imm) {
			entries[in.Imm] = true
		}
	}

	// Pass 2: recursive traversal from all entries, collecting block
	// leaders.
	leaders := map[uint32]bool{}
	visited := map[uint32]bool{}
	var work []uint32
	for e := range entries {
		gt.FuncEntries[e] = true
		leaders[e] = true
		work = append(work, e)
	}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		for inCode(a) && !visited[a] {
			visited[a] = true
			in, ok := decode(a)
			if !ok {
				break
			}
			next := a + isa.InstrSize
			switch in.Op {
			case isa.JMP:
				leaders[in.Imm] = true
				work = append(work, in.Imm)
				a = 0 // stop linear flow
			case isa.BR, isa.BRI:
				leaders[in.Imm] = true
				leaders[next] = true
				work = append(work, in.Imm, next)
				a = 0
			case isa.CALL:
				gt.FuncEntries[in.Imm] = true
				leaders[in.Imm] = true
				leaders[next] = true
				work = append(work, in.Imm, next)
				a = 0
			case isa.CALLR:
				// Indirect call: targets unknown statically; the
				// fallthrough continues.
				leaders[next] = true
				work = append(work, next)
				a = 0
			case isa.JR:
				a = 0 // indirect jump: targets unknown statically
			case isa.RET, isa.IRET, isa.HLT:
				a = 0
			default:
				a = next
			}
		}
	}

	// A leader is a block start only if its code was actually
	// traversed.
	for l := range leaders {
		if visited[l] {
			gt.BlockStarts[l] = true
		}
	}
	return gt
}

// NumBlocks returns the ground-truth basic-block count.
func (gt *StaticGroundTruth) NumBlocks() int { return len(gt.BlockStarts) }

// SortedBlockStarts returns block starts in ascending order.
func (gt *StaticGroundTruth) SortedBlockStarts() []uint32 {
	out := make([]uint32, 0, len(gt.BlockStarts))
	for a := range gt.BlockStarts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coverage computes the fraction of ground-truth blocks whose start
// addresses appear in the covered set.
func (gt *StaticGroundTruth) Coverage(covered map[uint32]bool) float64 {
	if len(gt.BlockStarts) == 0 {
		return 0
	}
	n := 0
	for a := range gt.BlockStarts {
		if covered[a] {
			n++
		}
	}
	return float64(n) / float64(len(gt.BlockStarts))
}
