package guestos

import (
	"fmt"
)

// Workload describes the concrete user-mode exercise script of §3.2:
// "The script first loads the driver so as to exercise its
// initialization routine, then invokes various standard IOCTLs,
// performs a send, exercises the reception, and ends with a driver
// unload."
type Workload struct {
	// DriverEntry is the load address of the driver's first
	// instruction (its DriverEntry).
	DriverEntry uint32
	// SendSizes are the UDP-ish payload sizes to send.
	SendSizes []int
	// InjectRX delivers a frame to the device model from the wire;
	// nil skips the receive exercise.
	InjectRX func(frame []byte) bool
	// StationMAC is used to build inbound test frames.
	StationMAC [6]byte
}

// DefaultSendSizes exercises small, medium and maximal frames.
var DefaultSendSizes = []int{64, 256, 1024, 1514}

// ExerciseReport summarizes a concrete exercise run.
type ExerciseReport struct {
	MAC         [6]byte
	LinkSpeed   uint32
	SendsOK     int
	ISRRuns     int
	RxIndicated int
}

// Exercise runs the full workload against a loaded concrete machine,
// returning a report. Each step mirrors one phase of the RevNIC
// exercise script.
func Exercise(os *OS, w Workload) (*ExerciseReport, error) {
	rep := &ExerciseReport{}
	if err := os.LoadDriver(w.DriverEntry); err != nil {
		return nil, err
	}
	if err := os.Initialize(); err != nil {
		return nil, err
	}
	// Standard IOCTLs.
	st, mac, err := os.Query(OIDMACAddress, 6)
	if err != nil || st != StatusSuccess {
		return nil, fmt.Errorf("query MAC: status %d err %v", st, err)
	}
	copy(rep.MAC[:], mac)
	if st, speed, err := os.Query(OIDLinkSpeed, 4); err == nil && st == StatusSuccess {
		rep.LinkSpeed = uint32(speed[0]) | uint32(speed[1])<<8 | uint32(speed[2])<<16 | uint32(speed[3])<<24
	}
	if _, err := os.Set(OIDPacketFilter, le32(FilterDirected|FilterBroadcast)); err != nil {
		return nil, err
	}
	// Multicast list: two group addresses.
	mcast := []byte{
		0x01, 0x00, 0x5E, 0x00, 0x00, 0x01,
		0x01, 0x00, 0x5E, 0x7F, 0xFF, 0xFA,
	}
	if _, err := os.Set(OIDMulticastList, mcast); err != nil {
		return nil, err
	}
	// Sends of various sizes, pumping completion interrupts after
	// each (the device raises TX-done as soon as it has the data).
	for _, size := range w.SendSizes {
		frame := buildFrame(broadcast, rep.MAC, size)
		st, err := os.Send(frame)
		if err != nil {
			return nil, fmt.Errorf("send %d: %w", size, err)
		}
		if st == StatusSuccess {
			rep.SendsOK++
		}
		n, err := os.PumpInterrupts(8)
		if err != nil {
			return nil, err
		}
		rep.ISRRuns += n
	}
	// Reception.
	if w.InjectRX != nil {
		for i := 0; i < 3; i++ {
			frame := buildFrame(rep.MAC, [6]byte{0x02, 0xEE, 0, 0, 0, byte(i)}, 128+64*i)
			if !w.InjectRX(frame) {
				return nil, fmt.Errorf("device dropped inbound frame %d", i)
			}
			n, err := os.PumpInterrupts(8)
			if err != nil {
				return nil, err
			}
			rep.ISRRuns += n
		}
		rep.RxIndicated = len(os.Received)
	}
	// Timer, then unload.
	if err := os.FireTimer(); err != nil {
		return nil, err
	}
	if err := os.Halt(); err != nil {
		return nil, err
	}
	return rep, nil
}

var broadcast = [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// buildFrame makes an Ethernet frame of the given total size with an
// IPv4 ethertype and a deterministic payload.
func buildFrame(dst, src [6]byte, size int) []byte {
	if size < 14 {
		size = 14
	}
	f := make([]byte, size)
	copy(f, dst[:])
	copy(f[6:], src[:])
	f[12], f[13] = 0x08, 0x00
	for i := 14; i < size; i++ {
		f[i] = byte(i * 7)
	}
	return f
}

func le32(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}
