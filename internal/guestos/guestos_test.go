package guestos

import (
	"testing"

	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/vm"
)

// miniDriver is a minimal but complete miniport used to test the OS
// model in isolation from the real drivers.
const miniDriver = `
.equ NdisMRegisterMiniport,     0xF00000
.equ NdisAllocateMemory,        0xF00008
.equ NdisReadPciSlotInformation,0xF00030
.equ NdisMIndicateReceivePacket,0xF00048
.equ NdisMSendComplete,         0xF00050
.org 0x10000
.func DriverEntry
	movi r1, chars
	movi r2, mp_init
	st32 [r1+0], r2
	movi r2, mp_send
	st32 [r1+4], r2
	movi r2, mp_isr
	st32 [r1+8], r2
	movi r2, mp_query
	st32 [r1+12], r2
	movi r2, mp_set
	st32 [r1+16], r2
	movi r2, mp_halt
	st32 [r1+20], r2
	push r1
	call NdisMRegisterMiniport
	movi r0, #0
	ret
.func mp_init
	movi r1, #64
	push r1
	call NdisAllocateMemory
	mov  r4, r0
	movi r1, #4
	push r1
	call NdisReadPciSlotInformation
	st32 [r4+0], r0
	mov  r0, r4
	ret
.func mp_send
	ld32 r1, [sp+8]
	ld32 r2, [sp+12]
	push r2
	push r1
	call NdisMIndicateReceivePacket ; echo the frame back up
	movi r0, #0
	ret 12
.func mp_isr
	movi r1, #0
	push r1
	call NdisMSendComplete
	ret 4
.func mp_query
	movi r0, #0
	ret 16
.func mp_set
	movi r0, #0
	ret 16
.func mp_halt
	ret 4
chars:
	.space 24
`

func setup(t *testing.T) (*OS, *vm.Machine, *isa.Program) {
	t.Helper()
	p, err := isa.Assemble(miniDriver)
	if err != nil {
		t.Fatal(err)
	}
	bus := hw.NewBus()
	m := vm.New(bus)
	if err := m.LoadImage(p); err != nil {
		t.Fatal(err)
	}
	os := New(m, hw.PCIConfig{VendorID: 1, DeviceID: 2, IOBase: 0xE000, IOSize: 0x40, IRQLine: 5})
	return os, m, p
}

func TestRegisterMiniportMonitoring(t *testing.T) {
	os, _, p := setup(t)
	if err := os.LoadDriver(p.Base); err != nil {
		t.Fatal(err)
	}
	if os.Entries.Init != p.Sym("mp_init") || os.Entries.Send != p.Sym("mp_send") ||
		os.Entries.ISR != p.Sym("mp_isr") || os.Entries.Halt != p.Sym("mp_halt") {
		t.Fatalf("entry points wrong: %+v", os.Entries)
	}
	// API call log captured the registration.
	if len(os.Calls) == 0 || os.Calls[0].Name != "NdisMRegisterMiniport" {
		t.Fatalf("API log = %+v", os.Calls)
	}
}

func TestInitializeAndPCI(t *testing.T) {
	os, m, p := setup(t)
	if err := os.LoadDriver(p.Base); err != nil {
		t.Fatal(err)
	}
	if err := os.Initialize(); err != nil {
		t.Fatal(err)
	}
	if os.Ctx == 0 {
		t.Fatal("no context")
	}
	// The driver stored the PCI I/O base in its context.
	if got := m.Read32(os.Ctx); got != 0xE000 {
		t.Errorf("ctx iobase = %#x", got)
	}
}

func TestSendIndicateAndCompletion(t *testing.T) {
	os, _, p := setup(t)
	if err := os.LoadDriver(p.Base); err != nil {
		t.Fatal(err)
	}
	if err := os.Initialize(); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 80)
	for i := range frame {
		frame[i] = byte(i)
	}
	st, err := os.Send(frame)
	if err != nil || st != StatusSuccess {
		t.Fatalf("send: %d %v", st, err)
	}
	// The echo driver indicated the same bytes back.
	if len(os.Received) != 1 || len(os.Received[0]) != 80 || os.Received[0][5] != 5 {
		t.Fatalf("received = %v frames", len(os.Received))
	}
	// Query/Set plumbing.
	if st, _, err := os.Query(OIDMACAddress, 6); err != nil || st != StatusSuccess {
		t.Fatal("query")
	}
	if st, err := os.Set(OIDPacketFilter, []byte{1, 0, 0, 0}); err != nil || st != StatusSuccess {
		t.Fatal("set")
	}
	if err := os.Halt(); err != nil {
		t.Fatal(err)
	}
}

func TestDMAAllocationRegistersRegion(t *testing.T) {
	os, m, _ := setup(t)
	// Drive the API directly through a stub call.
	p, err := isa.Assemble(`
.equ NdisMAllocateSharedMemory, 0xF00018
.org 0x20000
.func f
	movi r1, #256
	push r1
	call NdisMAllocateSharedMemory
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(p); err != nil {
		t.Fatal(err)
	}
	addr, err := m.CallEntry(p.Sym("f"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if addr == 0 || !m.Bus.DMA.Contains(addr) || !m.Bus.DMA.Contains(addr+255) {
		t.Errorf("DMA region not registered at %#x", addr)
	}
	_ = os
}

func TestAPIDescriptorsComplete(t *testing.T) {
	for i, d := range Table {
		if d.Name == "" {
			t.Errorf("API %d has no name", i)
		}
		if d.NArgs < 0 || d.NArgs > 4 {
			t.Errorf("API %s NArgs = %d", d.Name, d.NArgs)
		}
	}
	// The skip-list kinds the exploration heuristics rely on.
	if Table[APIWriteErrorLogEntry].Kind != KindSkippable || Table[APIDebugPrint].Kind != KindSkippable {
		t.Error("log functions must be skippable")
	}
	if Table[APIAllocateSharedMemory].Kind != KindDMAAlloc {
		t.Error("shared memory must be DMA-alloc kind")
	}
	if Table[APIRegisterMiniport].Kind != KindRegister || Table[APIInitializeTimer].Kind != KindRegister {
		t.Error("registration APIs must be monitored")
	}
}

func TestUnknownAPIFaults(t *testing.T) {
	os, m, _ := setup(t)
	_ = os
	p, _ := isa.Assemble(".org 0x20000\n.func f\ncall 0xF07000\nret\n")
	m.LoadImage(p)
	if _, err := m.CallEntry(p.Sym("f"), 100); err == nil {
		t.Error("unknown API index should fault")
	}
}
