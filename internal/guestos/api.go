// Package guestos models the source operating system (an NDIS-like
// Windows kernel) around the driver: the documented API functions the
// driver imports, miniport entry-point registration, memory and DMA
// allocation, packet indication, and the user-mode exerciser script
// that drives the driver through its operations (§3.2 of the paper).
//
// RevNIC's requirement is that "the OS driver interface and all API
// functions used by the driver be documented ... the name of the API
// functions, the parameter descriptions, along with information about
// data structures used by these functions". The Table in this file is
// that internal encoding.
package guestos

// API indices. A driver calls API n by calling the gate address
// hw.APIGate(n); the VM intercepts the call and dispatches here.
const (
	APIRegisterMiniport     = iota // (characteristicsPtr) -> status
	APIAllocateMemory              // (size) -> vaddr (0 on failure)
	APIFreeMemory                  // (vaddr) -> 0
	APIAllocateSharedMemory        // (size) -> DMA-capable physical addr
	APIFreeSharedMemory            // (addr) -> 0
	APIWriteErrorLogEntry          // (code) -> 0; irrelevant to hardware protocol
	APIReadPCIConfig               // (offset) -> config dword
	APIInitializeTimer             // (handlerAddr) -> 0
	APISetTimer                    // (milliseconds) -> 0
	APIIndicateReceive             // (bufAddr, len) -> 0; driver hands frame up
	APISendComplete                // (status) -> 0
	APIStallExecution              // (microseconds) -> 0; busy-wait
	APIGetSystemUpTime             // () -> milliseconds
	APIDebugPrint                  // (msgAddr) -> 0; irrelevant to hardware protocol
	NumAPIs
)

// Kind classifies API functions the way RevNIC's configuration does:
// which calls register driver structure (and must be monitored),
// which are irrelevant to the hardware protocol (skippable), and
// which return DMA addresses (must be communicated to the shell
// device).
type Kind int

// API kinds.
const (
	KindPlain Kind = iota
	// KindRegister functions register entry points or timers; RevNIC
	// monitors them to discover what to exercise (§3.2).
	KindRegister
	// KindAlloc functions return fresh guest memory.
	KindAlloc
	// KindDMAAlloc functions return DMA-capable physical memory whose
	// addresses must be tracked (§3.4).
	KindDMAAlloc
	// KindSkippable functions are irrelevant to the hardware protocol
	// (logging, debug output) and are skipped during symbolic
	// exploration (§3.2's final heuristic).
	KindSkippable
	// KindUpcall functions deliver data or events from the driver to
	// the OS (receive indication, send completion).
	KindUpcall
)

// Desc documents one API function: RevNIC's encoding of the
// "documented OS interface".
type Desc struct {
	Name  string
	NArgs int
	Kind  Kind
}

// Table is the API descriptor table, indexed by API index. Names
// follow the NDIS flavor of the originals.
var Table = [NumAPIs]Desc{
	APIRegisterMiniport:     {"NdisMRegisterMiniport", 1, KindRegister},
	APIAllocateMemory:       {"NdisAllocateMemory", 1, KindAlloc},
	APIFreeMemory:           {"NdisFreeMemory", 1, KindPlain},
	APIAllocateSharedMemory: {"NdisMAllocateSharedMemory", 1, KindDMAAlloc},
	APIFreeSharedMemory:     {"NdisMFreeSharedMemory", 1, KindPlain},
	APIWriteErrorLogEntry:   {"NdisWriteErrorLogEntry", 1, KindSkippable},
	APIReadPCIConfig:        {"NdisReadPciSlotInformation", 1, KindPlain},
	APIInitializeTimer:      {"NdisMInitializeTimer", 1, KindRegister},
	APISetTimer:             {"NdisMSetTimer", 1, KindPlain},
	APIIndicateReceive:      {"NdisMIndicateReceivePacket", 2, KindUpcall},
	APISendComplete:         {"NdisMSendComplete", 1, KindUpcall},
	APIStallExecution:       {"NdisStallExecution", 1, KindPlain},
	APIGetSystemUpTime:      {"NdisGetSystemUpTime", 0, KindPlain},
	APIDebugPrint:           {"DbgPrint", 1, KindSkippable},
}

// PCI config-space offsets understood by APIReadPCIConfig.
const (
	PCICfgID     = 0 // vendor in low 16 bits, device in high 16
	PCICfgIOBase = 4
	PCICfgIRQ    = 8
)

// Miniport characteristics table layout: the structure the driver
// passes to NdisMRegisterMiniport, holding its entry points. Offsets
// in bytes; a zero pointer means the entry point is absent.
const (
	CharInit  = 0
	CharSend  = 4
	CharISR   = 8
	CharQuery = 12
	CharSet   = 16
	CharHalt  = 20
	CharSize  = 24
)

// NDIS-flavored status codes.
const (
	StatusSuccess = 0
	StatusFailure = 1
)

// NDIS-flavored OIDs used by the exerciser and the drivers.
const (
	OIDPacketFilter  = 0x0001010E // OID_GEN_CURRENT_PACKET_FILTER
	OIDLinkSpeed     = 0x00010107 // OID_GEN_LINK_SPEED
	OIDMediaStatus   = 0x00010114 // OID_GEN_MEDIA_CONNECT_STATUS
	OIDMACAddress    = 0x01010102 // OID_802_3_CURRENT_ADDRESS
	OIDMulticastList = 0x01010103 // OID_802_3_MULTICAST_LIST
	OIDEnableWOL     = 0xFD010106 // OID_PNP_ENABLE_WAKE_UP
	OIDFullDuplex    = 0x00012000 // vendor-specific duplex control
	OIDLEDControl    = 0x00012001 // vendor-specific LED control
)

// Packet-filter bits (NDIS_PACKET_TYPE_*).
const (
	FilterDirected    = 0x01
	FilterMulticast   = 0x02
	FilterBroadcast   = 0x04
	FilterPromiscuous = 0x20
)
