package guestos

import (
	"fmt"

	"revnic/internal/hw"
	"revnic/internal/vm"
)

// EntryPoints are the driver entry points discovered by monitoring
// NdisMRegisterMiniport, "since these structures contain actual
// function pointers and have documented member variables" (§3.2).
type EntryPoints struct {
	Init  uint32
	Send  uint32
	ISR   uint32
	Query uint32
	Set   uint32
	Halt  uint32
	// Timer is registered separately at run time via
	// NdisMInitializeTimer, as the paper describes.
	Timer uint32
}

// Registered reports whether the mandatory entry points are present.
func (e EntryPoints) Registered() bool {
	return e.Init != 0 && e.Send != 0 && e.ISR != 0 && e.Halt != 0
}

// APICall records one OS API invocation for the wiretap.
type APICall struct {
	Index uint32
	Name  string
	Args  []uint32
	Ret   uint32
}

// heapBase is where the OS heap lives in guest RAM; allocations grow
// upward, DMA allocations are carved from the same region but also
// registered with the bus DMA registry.
const heapBase = 0x00080000

// OS is the concrete guest operating system instance wrapped around
// one driver.
type OS struct {
	M   *vm.Machine
	Cfg hw.PCIConfig

	Entries EntryPoints
	Ctx     uint32 // adapter context returned by Initialize

	// Received collects frames the driver indicated up the stack.
	Received [][]byte
	// SendCompletes counts NdisMSendComplete upcalls.
	SendCompletes int
	// Calls is the API call log.
	Calls []APICall
	// Uptime is the value returned by NdisGetSystemUpTime; tests and
	// the exerciser advance it.
	Uptime uint32

	heapNext uint32
}

// New wires an OS model to a machine and the PCI config of the NIC
// being driven (the parameters the developer feeds RevNIC).
func New(m *vm.Machine, cfg hw.PCIConfig) *OS {
	os := &OS{M: m, Cfg: cfg, heapNext: heapBase}
	m.OSCall = os.handleAPI
	return os
}

// Alloc carves n bytes (8-byte aligned) from the OS heap.
func (os *OS) Alloc(n uint32) uint32 {
	n = (n + 7) &^ 7
	if os.heapNext+n >= hw.StackTop {
		return 0
	}
	a := os.heapNext
	os.heapNext += n
	return a
}

func (os *OS) handleAPI(m *vm.Machine, index uint32) error {
	if index >= NumAPIs {
		return fmt.Errorf("guestos: call to unknown API index %d", index)
	}
	d := Table[index]
	args := make([]uint32, d.NArgs)
	for i := range args {
		args[i] = m.Arg(i)
	}
	ret := uint32(StatusSuccess)
	switch index {
	case APIRegisterMiniport:
		p := args[0]
		os.Entries.Init = m.Read32(p + CharInit)
		os.Entries.Send = m.Read32(p + CharSend)
		os.Entries.ISR = m.Read32(p + CharISR)
		os.Entries.Query = m.Read32(p + CharQuery)
		os.Entries.Set = m.Read32(p + CharSet)
		os.Entries.Halt = m.Read32(p + CharHalt)
	case APIAllocateMemory:
		ret = os.Alloc(args[0])
	case APIFreeMemory, APIFreeSharedMemory:
		if index == APIFreeSharedMemory {
			os.M.Bus.DMA.Unregister(args[0])
		}
	case APIAllocateSharedMemory:
		ret = os.Alloc(args[0])
		if ret != 0 {
			// The returned physical address is communicated to the
			// DMA registry, as §3.4 requires.
			os.M.Bus.DMA.Register(ret, args[0])
		}
	case APIWriteErrorLogEntry, APIDebugPrint:
		// Irrelevant to the hardware protocol.
	case APIReadPCIConfig:
		switch args[0] {
		case PCICfgID:
			ret = uint32(os.Cfg.VendorID) | uint32(os.Cfg.DeviceID)<<16
		case PCICfgIOBase:
			ret = os.Cfg.IOBase
		case PCICfgIRQ:
			ret = uint32(os.Cfg.IRQLine)
		default:
			ret = 0
		}
	case APIInitializeTimer:
		os.Entries.Timer = args[0]
	case APISetTimer:
		// The exerciser fires timers explicitly.
	case APIIndicateReceive:
		buf, n := args[0], args[1]
		frame := make([]byte, n)
		os.M.ReadMem(buf, frame)
		os.Received = append(os.Received, frame)
	case APISendComplete:
		os.SendCompletes++
	case APIStallExecution:
		os.Uptime += args[0] / 1000
	case APIGetSystemUpTime:
		ret = os.Uptime
	}
	os.Calls = append(os.Calls, APICall{Index: index, Name: d.Name, Args: args, Ret: ret})
	return m.APIReturn(ret, d.NArgs)
}

// entryBudget bounds translation blocks per entry-point invocation.
const entryBudget = 200000

// LoadDriver invokes the driver's load entry (DriverEntry), which is
// expected to register the miniport.
func (os *OS) LoadDriver(entry uint32) error {
	if _, err := os.M.CallEntry(entry, entryBudget); err != nil {
		return fmt.Errorf("guestos: DriverEntry: %w", err)
	}
	if !os.Entries.Registered() {
		return fmt.Errorf("guestos: driver did not register mandatory entry points: %+v", os.Entries)
	}
	return nil
}

// Initialize invokes MiniportInitialize; the returned adapter context
// is saved and passed to every later entry point. A zero context
// means initialization failed.
func (os *OS) Initialize() error {
	ctx, err := os.M.CallEntry(os.Entries.Init, entryBudget)
	if err != nil {
		return fmt.Errorf("guestos: Initialize: %w", err)
	}
	if ctx == 0 {
		return fmt.Errorf("guestos: Initialize reported failure")
	}
	os.Ctx = ctx
	return nil
}

// Send hands one frame to the driver's send entry point.
func (os *OS) Send(frame []byte) (uint32, error) {
	buf := os.Alloc(uint32(len(frame)))
	if buf == 0 {
		return StatusFailure, fmt.Errorf("guestos: out of heap")
	}
	os.M.WriteMem(buf, frame)
	return os.M.CallEntry(os.Entries.Send, entryBudget, os.Ctx, buf, uint32(len(frame)))
}

// Query invokes MiniportQueryInformation for an OID with an out
// buffer of n bytes, returning the buffer contents.
func (os *OS) Query(oid uint32, n uint32) (uint32, []byte, error) {
	buf := os.Alloc(n)
	st, err := os.M.CallEntry(os.Entries.Query, entryBudget, os.Ctx, oid, buf, n)
	if err != nil {
		return StatusFailure, nil, err
	}
	out := make([]byte, n)
	os.M.ReadMem(buf, out)
	return st, out, nil
}

// Set invokes MiniportSetInformation for an OID with the given input
// buffer.
func (os *OS) Set(oid uint32, in []byte) (uint32, error) {
	buf := os.Alloc(uint32(len(in)))
	os.M.WriteMem(buf, in)
	return os.M.CallEntry(os.Entries.Set, entryBudget, os.Ctx, oid, buf, uint32(len(in)))
}

// PumpInterrupts calls the driver ISR while the interrupt line is
// pending, up to max invocations (level-triggered semantics: the ISR
// must ack the device to deassert). It returns how many times the
// ISR ran. This is how the OS-side kernel dispatches interrupts to
// the miniport, and it runs after entry points return — the moment
// RevNIC's interrupt-injection heuristic identifies (§3.2).
func (os *OS) PumpInterrupts(max int) (int, error) {
	n := 0
	for os.M.Bus.Line.Pending() && n < max {
		if _, err := os.M.CallEntry(os.Entries.ISR, entryBudget, os.Ctx); err != nil {
			return n, fmt.Errorf("guestos: ISR: %w", err)
		}
		n++
	}
	if os.M.Bus.Line.Pending() {
		return n, fmt.Errorf("guestos: interrupt line still pending after %d ISR calls", n)
	}
	return n, nil
}

// FireTimer invokes the registered timer handler once, if any.
func (os *OS) FireTimer() error {
	if os.Entries.Timer == 0 {
		return nil
	}
	_, err := os.M.CallEntry(os.Entries.Timer, entryBudget, os.Ctx)
	return err
}

// Halt invokes MiniportHalt.
func (os *OS) Halt() error {
	_, err := os.M.CallEntry(os.Entries.Halt, entryBudget, os.Ctx)
	return err
}
