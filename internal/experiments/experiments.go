// Package experiments regenerates every table and figure of the
// paper's evaluation (§5). Each experiment has one generator that
// runs the relevant pipeline pieces and one renderer that prints the
// same rows/series the paper reports. cmd/revbench and the benchmark
// harness (bench_test.go) call these.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"revnic/internal/cfg"
	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/expr"
	"revnic/internal/hw"
	"revnic/internal/isa"
	"revnic/internal/platform"
	"revnic/internal/symexec"
	"revnic/internal/template"
)

// Context caches the expensive artifacts (one reverse-engineering run
// per driver) shared by all experiments.
type Context struct {
	Reversed map[string]*core.Reversed
}

// NewContext reverse engineers all four drivers, running the
// per-driver pipelines concurrently on one goroutine per available
// CPU. Results are identical to a serial build: each driver uses its
// own engine with a fixed seed, and the parallel exploration mode is
// bit-deterministic in the worker count.
func NewContext() (*Context, error) { return NewContextWorkers(0) }

// NewContextWorkers builds the context on a bounded worker pool with
// the default (coverage-guided) searcher.
func NewContextWorkers(workers int) (*Context, error) {
	return NewContextWith(workers, nil)
}

// NewContextWith builds the context on a bounded worker pool with an
// explicit path-selection searcher (cmd/revbench's -strategy knob;
// nil selects the coverage-guided default).
func NewContextWith(workers int, searcher symexec.SearcherFactory) (*Context, error) {
	return NewContextCfg(ContextConfig{Workers: workers, Searcher: searcher})
}

// ContextConfig parameterizes context construction for callers beyond
// the CLIs — notably the revnicd job service, which scopes each
// context build to its own expression arena.
type ContextConfig struct {
	// Workers caps both the number of drivers reverse engineered at
	// once and each engine's internal exploration parallelism
	// (cmd/revnic's -workers knob); 0 uses GOMAXPROCS.
	Workers int
	// Searcher is the path-selection factory; nil selects the
	// coverage-guided default.
	Searcher symexec.SearcherFactory
	// Arena is the expression arena every engine builds in; nil
	// selects the process-global default arena. Results are
	// bit-identical for any arena.
	Arena *expr.Arena
	// SolverBackend names the constraint-solver backend for every
	// engine (symexec.Config.SolverBackend); empty selects the core
	// default. Results are bit-identical for any backend.
	SolverBackend string
	// DisableIncrementalSolver turns off the solvers' shared
	// incremental SAT sessions (cmd/revbench's ablation grid).
	DisableIncrementalSolver bool
	// ShardFactor is each engine's shard-group granularity multiplier
	// (symexec.Config.ShardFactor); 0 auto-sizes. Part of the
	// deterministic schedule: results are bit-identical for a fixed
	// factor regardless of Workers.
	ShardFactor int
}

// NewContextCfg builds the context per the given configuration.
func NewContextCfg(cc ContextConfig) (*Context, error) {
	workers := cc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	all := drivers.All()
	revs := make([]*core.Reversed, len(all))
	errs := make([]error, len(all))
	// Split the budget between the driver-level pool and each
	// engine's internal exploration workers so the total stays near
	// `workers` goroutines instead of oversubscribing to the product
	// of the two. Engine results are identical for any Workers value,
	// so the split never changes the context's contents.
	pool := workers
	if pool > len(all) {
		pool = len(all)
	}
	perEngine := workers / pool
	if perEngine < 1 {
		perEngine = 1
	}
	// errgroup-style bounded pool: semaphore slots cap concurrency,
	// results land in per-driver slots so error reporting stays in
	// driver order regardless of completion order.
	sem := make(chan struct{}, pool)
	var wg sync.WaitGroup
	for i, d := range all {
		wg.Add(1)
		go func(i int, d *drivers.Info) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			revs[i], errs[i] = core.ReverseEngineer(d.Program, core.Options{
				Shell:      core.ShellConfig(d),
				DriverName: d.Name,
				Engine: symexec.Config{
					Seed: 42, Workers: perEngine,
					Searcher: cc.Searcher, Arena: cc.Arena,
					ShardFactor:              cc.ShardFactor,
					SolverBackend:            cc.SolverBackend,
					DisableIncrementalSolver: cc.DisableIncrementalSolver,
				},
			})
		}(i, d)
	}
	wg.Wait()
	c := &Context{Reversed: map[string]*core.Reversed{}}
	for i, d := range all {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, errs[i])
		}
		c.Reversed[d.Name] = revs[i]
	}
	return c, nil
}

// Get returns the cached reverse-engineering result for a driver.
func (c *Context) Get(name string) *core.Reversed { return c.Reversed[name] }

// ---------------------------------------------------------------- Table 1

// Table1Row mirrors Table 1: characteristics of the proprietary
// drivers.
type Table1Row struct {
	Driver          string
	File            string
	PortedTo        string
	DriverSizeKB    float64
	CodeSegKB       float64
	ImportedOSFuncs int
	DriverFuncs     int
}

// Table1 measures the driver binaries the way the paper reports them.
func Table1() []Table1Row {
	ports := map[string]string{
		"AMD PCNet":   "Windows, Linux, KitOS",
		"RTL8139":     "Windows, Linux, KitOS",
		"SMSC 91C111": "uC/OS-II, KitOS",
		"RTL8029":     "Windows, Linux, KitOS",
	}
	var out []Table1Row
	for _, d := range drivers.All() {
		gt := cfg.Static(d.Program.Base, d.Program.Code)
		// Code segment: extent of statically reachable code.
		var maxEnd uint32
		for _, a := range gt.SortedBlockStarts() {
			if a > maxEnd {
				maxEnd = a
			}
		}
		codeBytes := maxEnd + isa.InstrSize - d.Program.Base
		// Imported OS functions: distinct API gates referenced.
		imports := staticImports(d)
		out = append(out, Table1Row{
			Driver:          d.Name,
			File:            d.File,
			PortedTo:        ports[d.Name],
			DriverSizeKB:    float64(d.Program.Size()) / 1024,
			CodeSegKB:       float64(codeBytes) / 1024,
			ImportedOSFuncs: imports,
			DriverFuncs:     len(gt.FuncEntries),
		})
	}
	return out
}

// staticImports counts the distinct OS API functions the binary
// references (the import-table size of Table 1).
func staticImports(d *drivers.Info) int {
	seen := map[uint32]bool{}
	code := d.Program.Code
	for off := 0; off+isa.InstrSize <= len(code); off += isa.InstrSize {
		in, err := isa.Decode(code[off:])
		if err != nil {
			continue
		}
		if in.Op == isa.CALL && hw.IsAPIGate(in.Imm) {
			seen[hw.APIIndex(in.Imm)] = true
		}
	}
	return len(seen)
}

// RenderTable1 prints Table 1.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Characteristics of the proprietary, closed-source drivers\n")
	fmt.Fprintf(w, "%-14s %-14s %-24s %8s %8s %9s %6s\n",
		"Driver", "File", "Ported to", "Size", "CodeSeg", "Imports", "Funcs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-14s %-24s %7.1fK %7.1fK %9d %6d\n",
			r.Driver, r.File, r.PortedTo, r.DriverSizeKB, r.CodeSegKB, r.ImportedOSFuncs, r.DriverFuncs)
	}
}

// ---------------------------------------------------------------- Table 2

// Table2 runs the functionality-equivalence experiment for every
// driver (§5.2).
func (c *Context) Table2() ([]*core.FeatureReport, error) {
	var out []*core.FeatureReport
	for _, d := range drivers.All() {
		rep, err := core.CheckEquivalence(d, c.Get(d.Name), template.Windows)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", d.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

func mark(b bool) string {
	if b {
		return "yes"
	}
	return "FAIL"
}

// RenderTable2 prints the functionality matrix.
func RenderTable2(w io.Writer, reps []*core.FeatureReport) {
	fmt.Fprintf(w, "Table 2: Functionality coverage of reverse engineered drivers\n")
	fmt.Fprintf(w, "%-18s", "Functionality")
	for _, r := range reps {
		fmt.Fprintf(w, " %-12s", r.Driver)
	}
	fmt.Fprintln(w)
	row := func(name string, get func(*core.FeatureReport) string) {
		fmt.Fprintf(w, "%-18s", name)
		for _, r := range reps {
			fmt.Fprintf(w, " %-12s", get(r))
		}
		fmt.Fprintln(w)
	}
	row("Init/Shutdown", func(r *core.FeatureReport) string { return mark(r.InitShutdown) })
	row("Send/Receive", func(r *core.FeatureReport) string { return mark(r.SendReceive) })
	row("Multicast", func(r *core.FeatureReport) string { return mark(r.Multicast) })
	row("Get/Set MAC", func(r *core.FeatureReport) string { return mark(r.GetSetMAC) })
	row("Promiscuous", func(r *core.FeatureReport) string { return mark(r.Promiscuous) })
	row("Full Duplex", func(r *core.FeatureReport) string { return mark(r.FullDuplex) })
	row("DMA", func(r *core.FeatureReport) string { return r.DMA })
	row("Wake-on-LAN", func(r *core.FeatureReport) string { return r.WakeOnLAN })
	row("LED Status", func(r *core.FeatureReport) string { return r.LED })
	row("I/O trace equal", func(r *core.FeatureReport) string { return mark(r.IOTraceEqual) })
}

// ---------------------------------------------------------------- Table 3

// Table3Row is the template-writing effort (Table 3).
type Table3Row struct {
	TargetOS   template.OS
	PersonDays int
}

// Table3 reports template effort; the person-day figures are the
// paper's (a human-effort quantity that cannot be re-measured), and
// the template source is generated to show what the effort bought.
func Table3() []Table3Row {
	var out []Table3Row
	for _, os := range template.AllOS {
		out = append(out, Table3Row{TargetOS: os, PersonDays: template.PersonDays[os]})
	}
	return out
}

// RenderTable3 prints Table 3.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: Time to write a template (as reported in the paper)\n")
	fmt.Fprintf(w, "%-12s %s\n", "Target OS", "Person-Days")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %d\n", r.TargetOS, r.PersonDays)
	}
}

// ---------------------------------------------------------------- Table 4

// Table4Row is the developer-effort comparison (Table 4).
type Table4Row struct {
	Device        string
	ManualPersons int
	ManualSpan    string
	RevNICPersons int
	RevNICSpan    string
}

// Table4 reports the paper's developer-effort numbers. Like Table 3
// these are human-effort observations that cannot be re-measured by
// code; the reproduction's analogue — RevNIC exercising plus code
// synthesis in under an hour — is validated by the Figure 8 harness.
func Table4() []Table4Row {
	return []Table4Row{
		{"RTL8139", 18, "4 years", 1, "1 week"},
		{"SMSC 91C111", 8, "4 years", 1, "4 days"},
		{"RTL8029", 5, "2 years", 1, "5 days"},
		{"AMD PCNet", 3, "4 years", 1, "1 week"},
	}
}

// RenderTable4 prints Table 4.
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: Amount of developer effort (manual Linux vs RevNIC)\n")
	fmt.Fprintf(w, "%-14s %14s %12s %14s %12s\n", "Device", "Manual persons", "Manual span", "RevNIC persons", "RevNIC span")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %14d %12s %14d %12s\n", r.Device, r.ManualPersons, r.ManualSpan, r.RevNICPersons, r.RevNICSpan)
	}
}

// ---------------------------------------------------------------- figures

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []platform.Point
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Series []Series
}

// RenderFigure prints a figure as aligned columns (payload size, then
// one column per series).
func RenderFigure(w io.Writer, f *Figure, cpu bool) {
	fmt.Fprintf(w, "%s: %s [%s]\n", f.ID, f.Title, f.YLabel)
	fmt.Fprintf(w, "%8s", "payload")
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%8d", f.Series[0].Points[i].PayloadBytes)
		for _, s := range f.Series {
			v := s.Points[i].ThroughputMbps
			if cpu {
				v = s.Points[i].CPUPercent
			}
			fmt.Fprintf(w, " %22.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// throughputFigure assembles the five standard curves for a PC/VM
// figure: Windows original, Windows->Windows, Linux original,
// Windows->Linux, Windows->KitOS.
func (c *Context) throughputFigure(id, title, driverName string, m platform.Machine,
	winStack platform.StackModel, kitosStack platform.StackModel) (*Figure, error) {
	info, err := drivers.ByName(driverName)
	if err != nil {
		return nil, err
	}
	rev := c.Get(driverName)
	orig, err := platform.MeasureOriginal(info, platform.DefaultPayloads)
	if err != nil {
		return nil, fmt.Errorf("%s original: %w", id, err)
	}
	syn, err := platform.MeasureSynthesized(info, rev.Graph, template.Windows, platform.DefaultPayloads)
	if err != nil {
		return nil, fmt.Errorf("%s synthesized: %w", id, err)
	}
	native := platform.NativeCosts(syn)
	p := platform.DefaultPayloads
	return &Figure{
		ID: id, Title: title, YLabel: "Throughput (Mbps)",
		Series: []Series{
			{"Windows->KitOS", platform.Curve(m, kitosStack, syn, p)},
			{"Windows->Windows", platform.Curve(m, winStack, syn, p)},
			{"Linux Original", platform.Curve(m, platform.LinuxStack, native, p)},
			{"Windows->Linux", platform.Curve(m, platform.LinuxStack, syn, p)},
			{"Windows Original", platform.Curve(m, winStack, orig, p)},
		},
	}, nil
}

// Fig2 reproduces Figure 2: RTL8139 throughput on the x86 PC. The
// Windows-original curve carries the >1 KB quirk.
func (c *Context) Fig2() (*Figure, error) {
	winOrig := platform.WindowsStack
	winOrig.QuirkWallUS = platform.WindowsRTL8139Quirk
	f, err := c.throughputFigure("Figure 2", "RTL8139 driver throughput on x86",
		"RTL8139", platform.PC, platform.WindowsStack, platform.KitOSStack)
	if err != nil {
		return nil, err
	}
	// Replace the Windows-original series with the quirky one.
	info, _ := drivers.ByName("RTL8139")
	orig, err := platform.MeasureOriginal(info, platform.DefaultPayloads)
	if err != nil {
		return nil, err
	}
	f.Series[4] = Series{"Windows Original", platform.Curve(platform.PC, winOrig, orig, platform.DefaultPayloads)}
	return f, nil
}

// Fig3 reproduces Figure 3: RTL8139 CPU utilization on x86 (same
// simulation, CPU axis; rendered with cpu=true).
func (c *Context) Fig3() (*Figure, error) {
	f, err := c.Fig2()
	if err != nil {
		return nil, err
	}
	f.ID, f.Title, f.YLabel = "Figure 3", "CPU utilization for RTL8139 drivers on x86", "CPU Utilization (%)"
	// The paper's Figure 3 shows four curves (no KitOS).
	f.Series = f.Series[1:]
	return f, nil
}

// Fig4 reproduces Figure 4: 91C111 throughput on the FPGA platform.
func (c *Context) Fig4() (*Figure, error) {
	info, err := drivers.ByName("SMSC 91C111")
	if err != nil {
		return nil, err
	}
	rev := c.Get(info.Name)
	syn, err := platform.MeasureSynthesized(info, rev.Graph, template.UCOS, platform.DefaultPayloads)
	if err != nil {
		return nil, err
	}
	native := platform.NativeCosts(syn)
	p := platform.DefaultPayloads
	return &Figure{
		ID: "Figure 4", Title: "91C111 driver ported from Windows to an FPGA",
		YLabel: "Throughput (Mbps)",
		Series: []Series{
			{"uC/OSII Original", platform.Curve(platform.FPGA, platform.UCOSStack, native, p)},
			{"Windows->uC/OSII", platform.Curve(platform.FPGA, platform.UCOSStack, syn, p)},
		},
	}, nil
}

// Fig5 reproduces Figure 5: CPU fraction spent inside the 91C111
// driver.
func (c *Context) Fig5() (*Figure, error) {
	info, err := drivers.ByName("SMSC 91C111")
	if err != nil {
		return nil, err
	}
	rev := c.Get(info.Name)
	syn, err := platform.MeasureSynthesized(info, rev.Graph, template.UCOS, platform.DefaultPayloads)
	if err != nil {
		return nil, err
	}
	native := platform.NativeCosts(syn)
	mk := func(costs map[int]platform.DriverCost) []platform.Point {
		var pts []platform.Point
		for _, p := range platform.DefaultPayloads {
			pts = append(pts, platform.Point{
				PayloadBytes: p,
				CPUPercent:   platform.ISRFraction(platform.FPGA, platform.UCOSStack, costs[p], platform.FrameBytes(p)),
			})
		}
		return pts
	}
	return &Figure{
		ID: "Figure 5", Title: "CPU fraction spent inside the 91C111 driver",
		YLabel: "CPU Utilization (%)",
		Series: []Series{
			{"uC/OSII Original", mk(native)},
			{"Windows->uC/OSII", mk(syn)},
		},
	}, nil
}

// Fig6 reproduces Figure 6: RTL8029 throughput on QEMU.
func (c *Context) Fig6() (*Figure, error) {
	return c.throughputFigure("Figure 6", "RTL8029 throughput (QEMU)",
		"RTL8029", platform.QEMU, platform.WindowsStack, platform.KitOSStack)
}

// Fig7 reproduces Figure 7: AMD PCNet throughput on VMware, with the
// KitOS VM-quirk.
func (c *Context) Fig7() (*Figure, error) {
	kitos := platform.KitOSStack
	kitos.QuirkWallUS = platform.KitOSVMwareQuirk
	return c.throughputFigure("Figure 7", "AMD PCNet throughput (VMware)",
		"AMD PCNet", platform.VMware, platform.WindowsStack, kitos)
}

// ---------------------------------------------------------------- Fig 8

// CoverageSeries is one driver's coverage-vs-time curve (Figure 8).
type CoverageSeries struct {
	Driver string
	// Minutes and Percent are parallel: basic-block coverage over
	// simulated RevNIC running time.
	Minutes []float64
	Percent []float64
}

// blocksPerMinute converts executed translation blocks to simulated
// wall-clock exploration minutes (the paper's x-axis). The paper's
// engine symbolically executes x86-via-LLVM under KLEE with
// constraint solving on every branch, at roughly this many driver
// translation blocks per minute; the calibration places full
// exploration inside the paper's <20 minute envelope.
const blocksPerMinute = 1500

// Fig8 extracts coverage growth from the explorations.
func (c *Context) Fig8() []CoverageSeries {
	var out []CoverageSeries
	for _, d := range drivers.All() {
		rev := c.Get(d.Name)
		total := rev.GroundTruth.NumBlocks()
		s := CoverageSeries{Driver: d.Name}
		for _, pt := range rev.Exploration.Coverage {
			// Count only blocks inside the driver image toward
			// coverage (the collector may include a handful of
			// split variants).
			pct := 100 * float64(pt.CoveredBlocks) / float64(total)
			if pct > 100 {
				pct = 100 // split variants can slightly overcount
			}
			s.Minutes = append(s.Minutes, float64(pt.ExecutedBlocks)/blocksPerMinute)
			s.Percent = append(s.Percent, pct)
		}
		out = append(out, s)
	}
	return out
}

// RenderFig8 prints coverage curves at fixed time samples.
func RenderFig8(w io.Writer, series []CoverageSeries) {
	fmt.Fprintln(w, "Figure 8: Basic block coverage vs RevNIC running time")
	samples := []float64{0.25, 0.5, 1, 2, 4, 8, 12, 16, 20}
	fmt.Fprintf(w, "%8s", "min")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s.Driver)
	}
	fmt.Fprintln(w)
	for _, t := range samples {
		fmt.Fprintf(w, "%8.1f", t)
		for _, s := range series {
			fmt.Fprintf(w, " %13.1f%%", coverageAt(s, t))
		}
		fmt.Fprintln(w)
	}
}

func coverageAt(s CoverageSeries, minutes float64) float64 {
	best := 0.0
	for i, m := range s.Minutes {
		if m <= minutes && s.Percent[i] > best {
			best = s.Percent[i]
		}
	}
	return best
}

// FinalCoverage returns the end-of-run coverage fraction per driver.
func (c *Context) FinalCoverage() map[string]float64 {
	out := map[string]float64{}
	for _, d := range drivers.All() {
		out[d.Name] = c.Get(d.Name).Coverage()
	}
	return out
}

// ---------------------------------------------------------------- Fig 9

// Fig9Row is one driver's function-classification breakdown.
type Fig9Row struct {
	Driver       string
	TotalFuncs   int
	Automated    int
	Manual       int
	MixedHWOS    int
	AutomatedPct float64
}

// Fig9 classifies recovered functions into fully synthesized vs
// needing manual template integration.
func (c *Context) Fig9() []Fig9Row {
	var out []Fig9Row
	for _, d := range drivers.All() {
		st := c.Get(d.Name).Graph.ComputeStats()
		out = append(out, Fig9Row{
			Driver:       d.Name,
			TotalFuncs:   st.Funcs,
			Automated:    st.AutomatedFuncs,
			Manual:       st.ManualFuncs,
			MixedHWOS:    st.MixedFuncs,
			AutomatedPct: 100 * float64(st.AutomatedFuncs) / float64(st.Funcs),
		})
	}
	return out
}

// RenderFig9 prints the breakdown.
func RenderFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: OS-specific vs hardware-specific functions (% of recovered)")
	fmt.Fprintf(w, "%-14s %6s %10s %7s %11s %10s\n", "Driver", "Funcs", "Automated", "Manual", "Mixed HW/OS", "Auto %")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %6d %10d %7d %11d %9.0f%%\n",
			r.Driver, r.TotalFuncs, r.Automated, r.Manual, r.MixedHWOS, r.AutomatedPct)
	}
}

// ---------------------------------------------------------------- misc

// List enumerates available experiment IDs.
func List() []string {
	return []string{"table1", "table2", "table3", "table4",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
}

// Run executes one experiment by ID and renders it to w. Experiments
// that need reverse-engineering results receive the shared context.
func (c *Context) Run(id string, w io.Writer) error {
	switch strings.ToLower(id) {
	case "table1":
		RenderTable1(w, Table1())
	case "table2":
		reps, err := c.Table2()
		if err != nil {
			return err
		}
		RenderTable2(w, reps)
	case "table3":
		RenderTable3(w, Table3())
	case "table4":
		RenderTable4(w, Table4())
	case "fig2":
		f, err := c.Fig2()
		if err != nil {
			return err
		}
		RenderFigure(w, f, false)
	case "fig3":
		f, err := c.Fig3()
		if err != nil {
			return err
		}
		RenderFigure(w, f, true)
	case "fig4":
		f, err := c.Fig4()
		if err != nil {
			return err
		}
		RenderFigure(w, f, false)
	case "fig5":
		f, err := c.Fig5()
		if err != nil {
			return err
		}
		RenderFigure(w, f, true)
	case "fig6":
		f, err := c.Fig6()
		if err != nil {
			return err
		}
		RenderFigure(w, f, false)
	case "fig7":
		f, err := c.Fig7()
		if err != nil {
			return err
		}
		RenderFigure(w, f, false)
	case "fig8":
		RenderFig8(w, c.Fig8())
	case "fig9":
		RenderFig9(w, c.Fig9())
	default:
		return fmt.Errorf("unknown experiment %q; known: %s", id, strings.Join(List(), ", "))
	}
	return nil
}
