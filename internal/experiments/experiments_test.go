package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"revnic/internal/platform"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

func sharedCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() { ctx, ctxErr = NewContext() })
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

func TestTable1Static(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatal("want 4 rows")
	}
	for _, r := range rows {
		if r.DriverSizeKB <= 1 || r.CodeSegKB <= 1 || r.CodeSegKB > r.DriverSizeKB+0.1 {
			t.Errorf("%s: size %.1f code %.1f implausible", r.Driver, r.DriverSizeKB, r.CodeSegKB)
		}
		if r.ImportedOSFuncs < 4 {
			t.Errorf("%s: only %d imports", r.Driver, r.ImportedOSFuncs)
		}
		if r.DriverFuncs < 8 {
			t.Errorf("%s: only %d functions", r.Driver, r.DriverFuncs)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "pcntpci5.sys") {
		t.Error("render missing file name")
	}
}

func TestTable2AllFeaturesPass(t *testing.T) {
	c := sharedCtx(t)
	reps, err := c.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatal("want 4 drivers")
	}
	for _, r := range reps {
		if !r.IOTraceEqual {
			t.Errorf("%s: traces diverge: %s", r.Driver, r.FirstDivergence)
		}
		if !r.InitShutdown || !r.SendReceive || !r.Multicast || !r.Promiscuous || !r.FullDuplex {
			t.Errorf("%s: feature regression: %+v", r.Driver, r)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, reps)
	out := buf.String()
	if strings.Contains(out, "FAIL") {
		t.Errorf("Table 2 contains FAIL:\n%s", out)
	}
	// The N/A entries of the paper must be preserved.
	if !strings.Contains(out, "N/A") {
		t.Error("expected N/A rows for chips without DMA/WOL")
	}
}

func TestTables3And4(t *testing.T) {
	var buf bytes.Buffer
	RenderTable3(&buf, Table3())
	RenderTable4(&buf, Table4())
	for _, want := range []string{"kitos", "0", "RTL8139", "4 years", "1 week"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

// TestFigureShapes verifies the qualitative claims of §5.3 on the
// regenerated figures — the acceptance criteria from DESIGN.md.
func TestFigureShapes(t *testing.T) {
	c := sharedCtx(t)

	t.Run("fig2", func(t *testing.T) {
		f, err := c.Fig2()
		if err != nil {
			t.Fatal(err)
		}
		series := map[string][]platform.Point{}
		for _, s := range f.Series {
			series[s.Label] = s.Points
		}
		last := len(platform.DefaultPayloads) - 1
		// KitOS is the fastest curve.
		for name, pts := range series {
			if name == "Windows->KitOS" {
				continue
			}
			if pts[0].ThroughputMbps > series["Windows->KitOS"][0].ThroughputMbps+0.01 {
				t.Errorf("%s beats KitOS at small packets", name)
			}
		}
		// The original Windows driver drops above 1 KB; the
		// synthesized Windows driver does not.
		origAt1472 := series["Windows Original"][last].ThroughputMbps
		origAt896 := series["Windows Original"][8].ThroughputMbps // payload 1024
		synAt1472 := series["Windows->Windows"][last].ThroughputMbps
		if origAt1472 >= origAt896 {
			t.Error("Windows original quirk drop missing")
		}
		if synAt1472 <= origAt1472 {
			t.Error("synthesized driver inherited the quirk")
		}
		// Below the quirk threshold the synthesized Windows driver
		// matches the original within 5%.
		for i := 0; i < 8; i++ {
			o := series["Windows Original"][i].ThroughputMbps
			s := series["Windows->Windows"][i].ThroughputMbps
			if diff := (o - s) / o; diff > 0.05 || diff < -0.05 {
				t.Errorf("payload %d: synth deviates %.1f%%", platform.DefaultPayloads[i], 100*diff)
			}
		}
		// Ported-to-Linux ≈ native Linux ("on par").
		for i := range platform.DefaultPayloads {
			n := series["Linux Original"][i].ThroughputMbps
			s := series["Windows->Linux"][i].ThroughputMbps
			if d := (n - s) / n; d > 0.05 || d < -0.05 {
				t.Errorf("Linux port deviates %.1f%% at %d", 100*d, platform.DefaultPayloads[i])
			}
		}
	})

	t.Run("fig4", func(t *testing.T) {
		f, err := c.Fig4()
		if err != nil {
			t.Fatal(err)
		}
		last := len(platform.DefaultPayloads) - 1
		orig := f.Series[0].Points[last].ThroughputMbps
		port := f.Series[1].Points[last].ThroughputMbps
		gap := (orig - port) / orig
		// "Throughput is within 10% of the original driver."
		if gap < 0.02 || gap > 0.12 {
			t.Errorf("FPGA gap %.1f%% outside the paper's ~10%% claim", 100*gap)
		}
	})

	t.Run("fig5", func(t *testing.T) {
		f, err := c.Fig5()
		if err != nil {
			t.Fatal(err)
		}
		// "ranging roughly from 20% to 30% for both" at realistic
		// sizes (>= 512B payload).
		for _, s := range f.Series {
			for _, p := range s.Points {
				if p.PayloadBytes < 512 {
					continue
				}
				if p.CPUPercent < 10 || p.CPUPercent > 40 {
					t.Errorf("%s: driver fraction %.1f%% at %d outside band",
						s.Label, p.CPUPercent, p.PayloadBytes)
				}
			}
		}
	})

	t.Run("fig6", func(t *testing.T) {
		f, err := c.Fig6()
		if err != nil {
			t.Fatal(err)
		}
		series := map[string][]platform.Point{}
		for _, s := range f.Series {
			series[s.Label] = s.Points
		}
		last := len(platform.DefaultPayloads) - 1
		kit := series["Windows->KitOS"][last].ThroughputMbps
		win := series["Windows Original"][last].ThroughputMbps
		lin := series["Linux Original"][last].ThroughputMbps
		if !(kit > lin && lin > win) {
			t.Errorf("QEMU ordering wrong: kitos %.0f linux %.0f windows %.0f", kit, win, lin)
		}
		// Win->Win on par with Windows original.
		ww := series["Windows->Windows"][last].ThroughputMbps
		if d := (ww - win) / win; d > 0.05 || d < -0.05 {
			t.Errorf("Win->Win deviates %.1f%% from original", 100*d)
		}
	})

	t.Run("fig7", func(t *testing.T) {
		f, err := c.Fig7()
		if err != nil {
			t.Fatal(err)
		}
		series := map[string][]platform.Point{}
		for _, s := range f.Series {
			series[s.Label] = s.Points
		}
		last := len(platform.DefaultPayloads) - 1
		kit := series["Windows->KitOS"][last].ThroughputMbps
		win := series["Windows Original"][last].ThroughputMbps
		lin := series["Linux Original"][last].ThroughputMbps
		// "Performance on KitOS is lower, but same as that of the
		// original Windows driver."
		if d := (kit - win) / win; d > 0.08 || d < -0.08 {
			t.Errorf("KitOS %.0f should match Windows original %.0f", kit, win)
		}
		if lin <= win {
			t.Error("Linux should outperform Windows on VMware")
		}
	})
}

func TestFig8CoverageEnvelope(t *testing.T) {
	c := sharedCtx(t)
	series := c.Fig8()
	if len(series) != 4 {
		t.Fatal("want 4 drivers")
	}
	for _, s := range series {
		final := coverageAt(s, 20)
		// "Most tested drivers reach over 80% basic block coverage
		// in less than twenty minutes."
		if final < 80 {
			t.Errorf("%s: %.1f%% at 20 min", s.Driver, final)
		}
		if coverageAt(s, 0.05) >= final {
			t.Errorf("%s: no coverage growth visible", s.Driver)
		}
	}
	var buf bytes.Buffer
	RenderFig8(&buf, series)
	if !strings.Contains(buf.String(), "%") {
		t.Error("render broken")
	}
}

func TestFig9Breakdown(t *testing.T) {
	c := sharedCtx(t)
	rows := c.Fig9()
	total, auto := 0, 0
	for _, r := range rows {
		if r.Automated+r.Manual != r.TotalFuncs {
			t.Errorf("%s: partition broken", r.Driver)
		}
		total += r.TotalFuncs
		auto += r.Automated
	}
	// "Overall, about 70% of the functions are fully synthesized."
	pct := 100 * float64(auto) / float64(total)
	if pct < 55 || pct > 85 {
		t.Errorf("overall automated %.0f%% outside plausible band", pct)
	}
}

func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := sharedCtx(t)
	var buf bytes.Buffer
	for _, id := range List() {
		if err := c.Run(id, &buf); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	if c.Run("nonsense", &buf) == nil {
		t.Error("unknown id should error")
	}
	if buf.Len() < 2000 {
		t.Error("suspiciously little output")
	}
}
