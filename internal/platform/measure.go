package platform

import (
	"fmt"

	"revnic/internal/cfg"
	"revnic/internal/drivers"
	"revnic/internal/guestos"
	"revnic/internal/hw"
	"revnic/internal/nic"
	"revnic/internal/synthdrv"
	"revnic/internal/template"
	"revnic/internal/vm"
)

// DriverForm selects which implementation is being measured.
type DriverForm int

// Driver forms.
const (
	// Original is the closed-source binary driver on the source OS.
	Original DriverForm = iota
	// Synthesized is the RevNIC-generated driver.
	Synthesized
	// NativeTarget models the target OS's hand-written driver for
	// the same chip (e.g. 8139too.c): the same hardware protocol
	// with hand-optimized code, approximated as a fixed fraction of
	// the synthesized path length.
	NativeTarget
)

// nativeOptimization is the hand-tuning advantage attributed to
// mature native drivers (documented modeling assumption; see
// DESIGN.md).
const nativeOptimization = 0.93

// sizeRatio is the synthesized/original binary growth factor the
// paper reports for the 91C111 port (87 KB vs 59 KB, §5.3), applied
// to synthesized drivers on cache-sensitive platforms.
const sizeRatio = 87.0 / 59.0

func newModel(name string, line *hw.IRQLine, mem hw.MemBus, mac [6]byte) (nic.Model, error) {
	switch name {
	case "RTL8029":
		return nic.NewRTL8029(line, mac), nil
	case "RTL8139":
		return nic.NewRTL8139(line, mem, mac), nil
	case "AMD PCNet":
		return nic.NewPCNet(line, mem, mac), nil
	case "SMSC 91C111":
		return nic.NewSMC91C111(line, mac), nil
	}
	return nil, fmt.Errorf("platform: unknown driver %q", name)
}

var measureMAC = [6]byte{0x02, 0x77, 0x66, 0x55, 0x44, 0x33}

// MeasureOriginal runs the original binary driver and returns the
// per-packet cost (send + completion ISR) for each payload size.
func MeasureOriginal(info *drivers.Info, payloads []int) (map[int]DriverCost, error) {
	bus := hw.NewBus()
	m := vm.New(bus)
	cfgp := hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
		IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
	dev, err := newModel(info.Name, &bus.Line, m, measureMAC)
	if err != nil {
		return nil, err
	}
	bus.Attach(dev.(hw.Device), cfgp)
	if err := m.LoadImage(info.Program); err != nil {
		return nil, err
	}
	osm := guestos.New(m, cfgp)
	var io int64
	m.AddIOTap(func(port, write bool, addr uint32, size int, v uint32) {
		if port {
			io++
		}
	})
	if err := osm.LoadDriver(info.Program.Base); err != nil {
		return nil, err
	}
	if err := osm.Initialize(); err != nil {
		return nil, err
	}
	out := map[int]DriverCost{}
	for _, p := range payloads {
		frame := mkMeasureFrame(p)
		c0, io0 := m.Cycles, io
		if _, err := osm.Send(frame); err != nil {
			return nil, err
		}
		if _, err := osm.PumpInterrupts(8); err != nil {
			return nil, err
		}
		dev.TxFrames()
		out[p] = DriverCost{
			Instrs:    int64(m.Cycles - c0),
			IOOps:     io - io0,
			SizeRatio: 1.0,
		}
	}
	return out, nil
}

// MeasureSynthesized runs the synthesized driver and returns the
// per-packet cost per payload size. graph is the recovered CFG.
func MeasureSynthesized(info *drivers.Info, g *cfg.Graph, osKind template.OS, payloads []int) (map[int]DriverCost, error) {
	bus := hw.NewBus()
	cfgp := hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
		IOBase: 0xC000, IOSize: 0x100, IRQLine: 11}
	rt := template.NewRuntime(osKind, cfgp)
	d := synthdrv.New(g, rt, bus)
	dev, err := newModel(info.Name, &bus.Line, d, measureMAC)
	if err != nil {
		return nil, err
	}
	bus.Attach(dev.(hw.Device), cfgp)
	if err := d.Initialize(); err != nil {
		return nil, err
	}
	out := map[int]DriverCost{}
	for _, p := range payloads {
		frame := mkMeasureFrame(p)
		i0, io0 := d.Counters()
		if _, err := d.Send(frame); err != nil {
			return nil, err
		}
		if _, err := d.PumpInterrupts(8); err != nil {
			return nil, err
		}
		dev.TxFrames()
		i1, io1 := d.Counters()
		out[p] = DriverCost{Instrs: i1 - i0, IOOps: io1 - io0, SizeRatio: sizeRatio}
	}
	return out, nil
}

// NativeCosts derives a native-target-driver cost profile from the
// synthesized one.
func NativeCosts(synth map[int]DriverCost) map[int]DriverCost {
	out := make(map[int]DriverCost, len(synth))
	for k, v := range synth {
		out[k] = DriverCost{
			Instrs:    int64(float64(v.Instrs) * nativeOptimization),
			IOOps:     v.IOOps,
			SizeRatio: 1.0,
		}
	}
	return out
}

func mkMeasureFrame(payload int) []byte {
	n := FrameBytes(payload)
	f := make([]byte, n)
	copy(f, nic.BroadcastMAC[:])
	copy(f[6:], measureMAC[:])
	f[12], f[13] = 0x08, 0x00
	for i := 14; i < n; i++ {
		f[i] = byte(i)
	}
	return f
}

// ISRFraction measures the share of CPU time spent inside the driver
// (Figure 5) as driver time over total per-packet CPU work at the
// given frame size.
func ISRFraction(m Machine, os StackModel, cost DriverCost, frame int) float64 {
	driverUS := DriverUS(m, cost)
	total := StackUS(m, os, frame) + driverUS
	return 100 * driverUS / total
}
