// Package platform models the test platforms of §5.1/§5.3 — the x86
// PC, the FPGA4U board, and the QEMU/VMware virtual machines — and
// the network-stack personalities of the four operating systems, to
// regenerate the throughput and CPU-utilization figures (2–7).
//
// The models are parametric but grounded: the per-packet driver cost
// is not a guess — it is the instruction path length and hardware-I/O
// operation count measured by actually running the original binary
// driver (in the VM) or the synthesized driver (in the interpreter)
// for each packet size. Platform parameters (clock rate, port I/O
// latency, stack cycle counts, per-packet device latency, cache
// penalty) are calibrated so the absolute scales resemble the
// paper's; the qualitative claims — synthesized ≈ original, KitOS on
// top, the original Windows RTL8139 >1 KB anomaly that the port does
// not inherit, the ~10% FPGA gap from code-size growth — emerge from
// the same structural causes as in the paper.
package platform

import "math"

// StackModel is a target OS network-stack personality. Costs are in
// kilocycles so the same OS scales across platforms of different
// clock rates.
type StackModel struct {
	Name string
	// StackKCycles is the fixed per-packet protocol-stack cost (UDP
	// encapsulation, buffer management, syscall) in 1000s of cycles.
	StackKCycles float64
	// StackCyclesPerByte is the size-dependent stack cost (copies,
	// checksums); it dominates on the FPGA, which is why the driver
	// fraction of Figure 5 stays near-constant across sizes.
	StackCyclesPerByte float64
	// IRQKCycles is the per-interrupt kernel dispatch overhead.
	IRQKCycles float64
	// QuirkWallUS adds size-dependent wall-clock stalls that do not
	// burn CPU (waits); it models the original Windows RTL8139
	// driver's unexplained >1 KB slowdown (§5.3), which lives on the
	// OS side of the driver and is therefore NOT inherited by RevNIC
	// ports, and the KitOS-on-VMware "VM quirks" of Figure 7.
	QuirkWallUS func(frameBytes int) float64
}

// Machine is a hardware/hypervisor platform personality.
type Machine struct {
	Name string
	// MHz is the effective CPU frequency in cycles/µs.
	MHz float64
	// InstrCycles is the average cycles per ordinary instruction.
	InstrCycles float64
	// PortIOCycles is the additional cost of one port I/O access
	// (PCI transaction on the PC, bus turnaround on the FPGA,
	// emulation dispatch in the VMs).
	PortIOCycles float64
	// DeviceUS is the per-packet device-side latency (descriptor
	// fetch, transfer, completion interrupt); wall-clock, overlapped
	// with nothing in the serialized send benchmark. VMs "confirm
	// transmission immediately after the driver has given it all the
	// data" (§5.1), so theirs is tiny.
	DeviceUS float64
	// WireMbps caps throughput at the physical line rate; 0 means
	// uncapped ("VMs disregard the rated speed of the NIC", §5.1).
	WireMbps float64
	// CacheAlpha scales the synthesized-code penalty: the RevNIC
	// binary is larger than the hand-optimized original (87 KB vs
	// 59 KB for the 91C111 port, §5.3), which costs instruction
	// fetch bandwidth on cache-starved platforms.
	CacheAlpha float64
}

// The evaluation platforms (§5.1).
var (
	PC     = Machine{Name: "x86 PC (Core 2 Duo 2.4 GHz)", MHz: 2400, InstrCycles: 1, PortIOCycles: 200, DeviceUS: 40, WireMbps: 100, CacheAlpha: 0.01}
	FPGA   = Machine{Name: "FPGA4U (Nios II 75 MHz)", MHz: 75, InstrCycles: 1.3, PortIOCycles: 6, DeviceUS: 50, WireMbps: 0, CacheAlpha: 0.7}
	QEMU   = Machine{Name: "QEMU 0.9.1", MHz: 2000, InstrCycles: 1, PortIOCycles: 120, DeviceUS: 3, WireMbps: 0, CacheAlpha: 0.01}
	VMware = Machine{Name: "VMware Server 1.0.10", MHz: 7000, InstrCycles: 1, PortIOCycles: 600, DeviceUS: 2, WireMbps: 0, CacheAlpha: 0.01}
)

// The target OS stack personalities.
var (
	WindowsStack = StackModel{Name: "Windows XP SP3", StackKCycles: 72, StackCyclesPerByte: 3, IRQKCycles: 9.6}
	LinuxStack   = StackModel{Name: "Linux 2.6.26", StackKCycles: 60, StackCyclesPerByte: 2.5, IRQKCycles: 7}
	KitOSStack   = StackModel{Name: "KitOS", StackKCycles: 2.4, StackCyclesPerByte: 0.5, IRQKCycles: 0.7}
	UCOSStack    = StackModel{Name: "uC/OS-II", StackKCycles: 3, StackCyclesPerByte: 17, IRQKCycles: 0.45}
)

// WindowsRTL8139Quirk reproduces the original driver's performance
// drop for UDP packets over 1 KB (§5.3, Figure 2): a wall-clock stall
// on the OS side of the original driver.
func WindowsRTL8139Quirk(frameBytes int) float64 {
	if frameBytes > 1024+udpOverhead {
		return 160.0
	}
	return 0
}

// KitOSVMwareQuirk reproduces Figure 7's observation that the KitOS
// port performs like the original Windows driver on VMware, "most
// likely due to interactions with VM quirks".
func KitOSVMwareQuirk(frameBytes int) float64 { return 11.3 }

// DriverCost is the measured per-packet execution profile of a
// driver: instruction path length and hardware I/O operations for one
// send plus its completion interrupt.
type DriverCost struct {
	Instrs int64
	IOOps  int64
	// SizeRatio is synthesized/original binary size, driving the
	// cache penalty (1.0 for original drivers).
	SizeRatio float64
}

// Point is one measurement of a performance curve.
type Point struct {
	PayloadBytes   int
	ThroughputMbps float64
	CPUPercent     float64
}

// udpOverhead is Ethernet+IP+UDP header bytes added to the payload.
const udpOverhead = 42

// FrameBytes converts a UDP payload size to a frame size.
func FrameBytes(payload int) int {
	f := payload + udpOverhead
	if f < 64 {
		f = 64
	}
	if f > 1514 {
		f = 1514
	}
	return f
}

// DriverUS computes the driver's CPU microseconds per packet on a
// machine, including the synthesized-code cache penalty.
func DriverUS(m Machine, cost DriverCost) float64 {
	penalty := 1.0
	if cost.SizeRatio > 1 {
		penalty = 1 + m.CacheAlpha*(cost.SizeRatio-1)
	}
	return (float64(cost.Instrs)*m.InstrCycles + float64(cost.IOOps)*m.PortIOCycles) * penalty / m.MHz
}

// Simulate computes throughput and CPU utilization for one platform,
// OS stack and measured driver cost at a given payload size.
func Simulate(m Machine, os StackModel, cost DriverCost, payload int) Point {
	frame := FrameBytes(payload)
	cpuUS := stackUS(m, os, frame) + DriverUS(m, cost)
	wallUS := cpuUS + m.DeviceUS
	if os.QuirkWallUS != nil {
		wallUS += os.QuirkWallUS(frame)
	}
	bits := float64(frame+24) * 8 // preamble + IFG + FCS on the wire
	if m.WireMbps > 0 {
		if wireUS := bits / m.WireMbps; wireUS > wallUS {
			wallUS = wireUS
		}
	}
	return Point{
		PayloadBytes:   payload,
		ThroughputMbps: bits / wallUS,
		CPUPercent:     math.Min(100, 100*cpuUS/wallUS),
	}
}

// stackUS is the OS-side CPU time per packet of the given frame size.
func stackUS(m Machine, os StackModel, frame int) float64 {
	return ((os.StackKCycles+os.IRQKCycles)*1000 + os.StackCyclesPerByte*float64(frame)) / m.MHz
}

// StackUS exposes the per-packet OS cost for the Figure 5 fraction.
func StackUS(m Machine, os StackModel, frame int) float64 { return stackUS(m, os, frame) }

// Curve sweeps payload sizes, mirroring the benchmark of §5.3: "a
// benchmark that sends UDP packets of increasing size, up to the
// maximum length of an Ethernet frame".
func Curve(m Machine, os StackModel, costs map[int]DriverCost, payloads []int) []Point {
	out := make([]Point, 0, len(payloads))
	for _, p := range payloads {
		out = append(out, Simulate(m, os, costs[p], p))
	}
	return out
}

// DefaultPayloads are the x-axis sample points of Figures 2-7.
var DefaultPayloads = []int{64, 128, 256, 384, 512, 640, 768, 896, 1024, 1152, 1280, 1408, 1472}
