package platform

import (
	"testing"

	"revnic/internal/cfg"
	"revnic/internal/drivers"
	"revnic/internal/hw"
	"revnic/internal/symexec"
	"revnic/internal/template"
)

func TestFrameBytes(t *testing.T) {
	if FrameBytes(0) != 64 || FrameBytes(64) != 106 || FrameBytes(1472) != 1514 || FrameBytes(9000) != 1514 {
		t.Error("FrameBytes bounds wrong")
	}
}

func TestSimulateWireCap(t *testing.T) {
	cost := DriverCost{Instrs: 1000, IOOps: 2, SizeRatio: 1}
	p := Simulate(PC, KitOSStack, cost, 1472)
	if p.ThroughputMbps > PC.WireMbps+0.001 {
		t.Errorf("throughput %f exceeds wire rate", p.ThroughputMbps)
	}
	if p.CPUPercent >= 100 {
		t.Error("wire-bound case should not be CPU-saturated")
	}
	// Uncapped platform is CPU/device-bound.
	q := Simulate(QEMU, KitOSStack, cost, 1472)
	if q.ThroughputMbps <= 0 {
		t.Error("uncapped throughput must be positive")
	}
}

func TestSimulateMonotonicity(t *testing.T) {
	// With per-packet fixed costs, throughput must rise with payload
	// size on an uncapped platform.
	cost := DriverCost{Instrs: 5000, IOOps: 10, SizeRatio: 1}
	prev := 0.0
	for _, p := range DefaultPayloads {
		pt := Simulate(QEMU, WindowsStack, cost, p)
		if pt.ThroughputMbps <= prev {
			t.Fatalf("throughput not increasing at payload %d", p)
		}
		prev = pt.ThroughputMbps
	}
}

func TestCachePenaltyDirection(t *testing.T) {
	orig := DriverCost{Instrs: 10000, IOOps: 800, SizeRatio: 1}
	syn := orig
	syn.SizeRatio = 87.0 / 59.0
	po := Simulate(FPGA, UCOSStack, orig, 1472)
	ps := Simulate(FPGA, UCOSStack, syn, 1472)
	if ps.ThroughputMbps >= po.ThroughputMbps {
		t.Error("synthesized driver should be slower on the FPGA")
	}
	gap := (po.ThroughputMbps - ps.ThroughputMbps) / po.ThroughputMbps
	if gap > 0.2 {
		t.Errorf("FPGA gap %.0f%% too large", 100*gap)
	}
	// On the PC the penalty must be negligible.
	po2 := Simulate(PC, WindowsStack, orig, 256)
	ps2 := Simulate(PC, WindowsStack, syn, 256)
	if d := (po2.ThroughputMbps - ps2.ThroughputMbps) / po2.ThroughputMbps; d > 0.02 {
		t.Errorf("PC penalty %.1f%% should be negligible", 100*d)
	}
}

func TestWindowsQuirkShape(t *testing.T) {
	// The quirk must not fire below 1 KB payloads and must fire above.
	if WindowsRTL8139Quirk(FrameBytes(1024)) != 0 {
		t.Error("quirk fires at 1024")
	}
	if WindowsRTL8139Quirk(FrameBytes(1152)) == 0 {
		t.Error("quirk missing at 1152")
	}
}

func measureBoth(t *testing.T, name string) (map[int]DriverCost, map[int]DriverCost) {
	t.Helper()
	info, err := drivers.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	eng := symexec.New(info.Program, symexec.Config{
		Seed: 13,
		Shell: hw.PCIConfig{VendorID: info.VendorID, DeviceID: info.DeviceID,
			IOBase: 0xC000, IOSize: 0x100, IRQLine: 11},
	})
	res, err := eng.Explore()
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(res.Collector)
	payloads := []int{64, 512, 1472}
	orig, err := MeasureOriginal(info, payloads)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := MeasureSynthesized(info, g, template.Windows, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return orig, syn
}

func TestMeasuredPathLengths(t *testing.T) {
	orig, syn := measureBoth(t, "RTL8029")
	for _, p := range []int{64, 512, 1472} {
		o, s := orig[p], syn[p]
		if o.Instrs == 0 || s.Instrs == 0 {
			t.Fatalf("payload %d: zero instruction count", p)
		}
		// The synthesized driver executes the same recovered code:
		// path lengths must match almost exactly (the paper's
		// "negligible overhead" claim has a structural basis here).
		ratio := float64(s.Instrs) / float64(o.Instrs)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("payload %d: instr ratio %.3f (orig %d synth %d)", p, ratio, o.Instrs, s.Instrs)
		}
		if o.IOOps != s.IOOps {
			t.Errorf("payload %d: io ops differ: %d vs %d", p, o.IOOps, s.IOOps)
		}
	}
	// Path length must grow with packet size (the byte-copy loop).
	if !(orig[1472].Instrs > orig[512].Instrs && orig[512].Instrs > orig[64].Instrs) {
		t.Error("path length not monotonic in size")
	}
}

func TestISRFractionBand(t *testing.T) {
	// Figure 5's 20-30% band at full-size frames on the FPGA.
	_, syn := measureBoth(t, "SMSC 91C111")
	fr := ISRFraction(FPGA, UCOSStack, syn[1472], FrameBytes(1472))
	if fr < 15 || fr > 45 {
		t.Errorf("driver CPU fraction %.1f%% outside plausible band", fr)
	}
}
