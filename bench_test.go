// Package revnic_test is the benchmark harness: one testing.B target
// per table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus ablation benchmarks for the
// design choices DESIGN.md calls out (path-selection strategy,
// polling-loop killing, symbolic vs concrete hardware).
//
// Each benchmark regenerates its experiment from scratch inside the
// timing loop where that is the interesting cost (exploration,
// synthesis), or reuses the shared reverse-engineering context where
// the experiment itself is the product (figures/tables), reporting
// the relevant headline metric via b.ReportMetric.
package revnic_test

import (
	"flag"
	"runtime"
	"sync"
	"testing"

	"revnic/internal/cfg"
	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/experiments"
	"revnic/internal/expr"
	"revnic/internal/symexec"
	"revnic/internal/synth"
	"revnic/internal/template"
)

// workersFlag sets the exploration worker count for every benchmark
// that runs the reverse-engineering pipeline, e.g.
//
//	go test -bench 'Table2|Fig8' -workers=1
//	go test -bench 'Table2|Fig8' -workers=4
//
// Results (coverage %, trace equality, synthesized code) are
// identical for any value; only wall time changes.
var workersFlag = flag.Int("workers", runtime.GOMAXPROCS(0), "exploration worker goroutines for pipeline benchmarks")

var (
	ctxOnce sync.Once
	ctx     *experiments.Context
	ctxErr  error
)

func sharedCtx(b *testing.B) *experiments.Context {
	b.Helper()
	ctxOnce.Do(func() { ctx, ctxErr = experiments.NewContextWorkers(*workersFlag) })
	if ctxErr != nil {
		b.Fatal(ctxErr)
	}
	return ctx
}

// BenchmarkTable1 regenerates the driver-characteristics table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 4 {
			b.Fatal("table1 rows")
		}
	}
}

// BenchmarkTable2 runs the full functionality-equivalence experiment
// (original vs synthesized I/O traces for all four drivers).
func BenchmarkTable2(b *testing.B) {
	c := sharedCtx(b)
	b.ResetTimer()
	equal := 0
	for i := 0; i < b.N; i++ {
		reps, err := c.Table2()
		if err != nil {
			b.Fatal(err)
		}
		equal = 0
		for _, r := range reps {
			if r.IOTraceEqual {
				equal++
			}
		}
	}
	b.ReportMetric(float64(equal), "drivers-trace-equal")
}

// BenchmarkTable3 regenerates the template-effort table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table3()) != 4 {
			b.Fatal("table3")
		}
	}
}

// BenchmarkTable4 regenerates the developer-effort table.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table4()) != 4 {
			b.Fatal("table4")
		}
	}
}

func benchFigure(b *testing.B, run func() error) {
	c := sharedCtx(b)
	_ = c
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates RTL8139 throughput on x86.
func BenchmarkFig2(b *testing.B) {
	c := sharedCtx(b)
	benchFigure(b, func() error { _, err := c.Fig2(); return err })
}

// BenchmarkFig3 regenerates RTL8139 CPU utilization on x86.
func BenchmarkFig3(b *testing.B) {
	c := sharedCtx(b)
	benchFigure(b, func() error { _, err := c.Fig3(); return err })
}

// BenchmarkFig4 regenerates 91C111 throughput on the FPGA.
func BenchmarkFig4(b *testing.B) {
	c := sharedCtx(b)
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := c.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		last := len(f.Series[0].Points) - 1
		orig := f.Series[0].Points[last].ThroughputMbps
		port := f.Series[1].Points[last].ThroughputMbps
		gap = 100 * (orig - port) / orig
	}
	b.ReportMetric(gap, "fpga-gap-%")
}

// BenchmarkFig5 regenerates the in-driver CPU fraction.
func BenchmarkFig5(b *testing.B) {
	c := sharedCtx(b)
	benchFigure(b, func() error { _, err := c.Fig5(); return err })
}

// BenchmarkFig6 regenerates RTL8029 throughput on QEMU.
func BenchmarkFig6(b *testing.B) {
	c := sharedCtx(b)
	benchFigure(b, func() error { _, err := c.Fig6(); return err })
}

// BenchmarkFig7 regenerates PCNet throughput on VMware.
func BenchmarkFig7(b *testing.B) {
	c := sharedCtx(b)
	benchFigure(b, func() error { _, err := c.Fig7(); return err })
}

// BenchmarkFig8 measures the full exploration run that produces the
// coverage-vs-time curve for one driver (the expensive, interesting
// cost of the whole system).
func BenchmarkFig8(b *testing.B) {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		b.Fatal(err)
	}
	var cov float64
	for i := 0; i < b.N; i++ {
		rev, err := core.ReverseEngineer(info.Program, core.Options{
			Shell: core.ShellConfig(info), DriverName: info.Name,
			Engine: symexec.Config{Seed: int64(i), Workers: *workersFlag},
		})
		if err != nil {
			b.Fatal(err)
		}
		cov = 100 * rev.Coverage()
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkFig9 regenerates the function-classification breakdown.
func BenchmarkFig9(b *testing.B) {
	c := sharedCtx(b)
	var auto float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := c.Fig9()
		total, autoN := 0, 0
		for _, r := range rows {
			total += r.TotalFuncs
			autoN += r.Automated
		}
		auto = 100 * float64(autoN) / float64(total)
	}
	b.ReportMetric(auto, "auto-funcs-%")
}

// BenchmarkSynthesis isolates trace-to-C code generation (the
// "100 MB/minute" synthesizer stage of §5.4).
func BenchmarkSynthesis(b *testing.B) {
	c := sharedCtx(b)
	rev := c.Get("RTL8139")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := synth.Generate(rev.Graph, synth.Options{DriverName: "RTL8139"})
		if len(out.Code) == 0 {
			b.Fatal("empty code")
		}
	}
}

// BenchmarkCFGBuild isolates trace merging and CFG reconstruction.
func BenchmarkCFGBuild(b *testing.B) {
	c := sharedCtx(b)
	rev := c.Get("RTL8139")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := cfg.Build(rev.Exploration.Collector)
		if len(g.Funcs) == 0 {
			b.Fatal("no functions")
		}
	}
}

// BenchmarkTemplateInstantiation isolates template filling for all
// four target OSes.
func BenchmarkTemplateInstantiation(b *testing.B) {
	c := sharedCtx(b)
	rev := c.Get("RTL8029")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, osk := range template.AllOS {
			if s := rev.InstantiateTemplate(osk); len(s) == 0 {
				b.Fatal("empty template")
			}
		}
	}
}

// --- parallel pipeline ablation ---------------------------------------

// benchExploreWorkers reverse engineers RTL8029 end to end with a
// fixed worker count; compare BenchmarkExploreSerial with
// BenchmarkExploreParallel to see what the fork-join mode buys on
// this machine. The reported coverage metric must be identical for
// both (the parallel mode is bit-deterministic in the worker count).
func benchExploreWorkers(b *testing.B, workers int) {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		b.Fatal(err)
	}
	var cov float64
	for i := 0; i < b.N; i++ {
		rev, err := core.ReverseEngineer(info.Program, core.Options{
			Shell: core.ShellConfig(info), DriverName: info.Name,
			Engine: symexec.Config{Seed: 42, Workers: workers},
		})
		if err != nil {
			b.Fatal(err)
		}
		cov = 100 * rev.Coverage()
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkExploreSerial runs the exploration shards on one goroutine.
func BenchmarkExploreSerial(b *testing.B) { benchExploreWorkers(b, 1) }

// BenchmarkExploreParallel runs the shards on one goroutine per CPU.
func BenchmarkExploreParallel(b *testing.B) { benchExploreWorkers(b, runtime.GOMAXPROCS(0)) }

// benchContextWorkers rebuilds the full four-driver context (the
// expensive shared setup of every experiment) with a fixed pool size.
func benchContextWorkers(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewContextWorkers(workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContextSerial reverse engineers the four drivers one at a
// time on a single-worker pool.
func BenchmarkContextSerial(b *testing.B) { benchContextWorkers(b, 1) }

// BenchmarkContextParallel reverse engineers the four drivers on one
// worker per CPU.
func BenchmarkContextParallel(b *testing.B) { benchContextWorkers(b, runtime.GOMAXPROCS(0)) }

// --- ablations ---------------------------------------------------------

func explorationRun(b *testing.B, cfgTweak func(*symexec.Config)) *core.Reversed {
	info, err := drivers.ByName("RTL8029")
	if err != nil {
		b.Fatal(err)
	}
	ecfg := symexec.Config{Seed: 3}
	cfgTweak(&ecfg)
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell: core.ShellConfig(info), DriverName: info.Name, Engine: ecfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rev
}

// explorationCoverage runs one ablation exploration and reports the
// headline metrics every ablation benchmark shares: final coverage
// and the solver traffic it took to get there.
func explorationCoverage(b *testing.B, cfgTweak func(*symexec.Config)) float64 {
	rev := explorationRun(b, cfgTweak)
	e := rev.Exploration
	b.ReportMetric(float64(e.SolverQueries), "solver-queries")
	b.ReportMetric(float64(e.SolverCacheHits+e.SolverModelHits), "solver-cache-hits")
	return 100 * rev.Coverage()
}

// BenchmarkAblationSearchCoverage / DFS / BFS compare the §3.2
// path-selection searchers through the pluggable Searcher interface.
func BenchmarkAblationSearchCoverage(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = explorationCoverage(b, func(c *symexec.Config) { c.Searcher = symexec.NewCoverageGuided })
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkAblationSearchDFS explores depth-first.
func BenchmarkAblationSearchDFS(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = explorationCoverage(b, func(c *symexec.Config) { c.Searcher = symexec.NewDFS })
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkAblationSearchBFS explores breadth-first.
func BenchmarkAblationSearchBFS(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = explorationCoverage(b, func(c *symexec.Config) { c.Searcher = symexec.NewBFS })
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkAblationIncrementalOff disables the solver's incremental
// SAT sessions; compare against BenchmarkAblationSearchCoverage (the
// same configuration with sessions on) to see what prefix reuse buys.
// The coverage metric must be identical — the switch never changes
// answers.
func BenchmarkAblationIncrementalOff(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = explorationCoverage(b, func(c *symexec.Config) { c.DisableIncrementalSolver = true })
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkAblationInterningOff runs the full exploration with the
// expression intern table bypassed: every node is allocated fresh, so
// structural equality decays to hashing walks and the solver's
// ID-keyed caches stop hitting across queries. The difference against
// BenchmarkAblationSearchCoverage is the hash-consing dividend.
func BenchmarkAblationInterningOff(b *testing.B) {
	prev := expr.SetInterning(false)
	defer expr.SetInterning(prev)
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = explorationCoverage(b, func(c *symexec.Config) {})
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkAblationLoopKill disables the polling-loop killer; the
// coverage metric shows what the heuristic buys under the same
// budgets.
func BenchmarkAblationLoopKill(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = explorationCoverage(b, func(c *symexec.Config) { c.DisableLoopKill = true })
	}
	b.ReportMetric(cov, "coverage-%")
}

// BenchmarkAblationConcreteHW replaces symbolic hardware with a
// passive concrete device (§3.1's claim: symbolic hardware exercises
// branches a real device cannot).
func BenchmarkAblationConcreteHW(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = explorationCoverage(b, func(c *symexec.Config) { c.ConcreteHardware = true })
	}
	b.ReportMetric(cov, "coverage-%")
}
