module revnic

go 1.24
