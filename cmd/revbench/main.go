// Command revbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	revbench -exp all            # everything
//	revbench -exp fig2           # one experiment
//	revbench -list               # enumerate experiment IDs
//	revbench -grid               # solver-ablation timing grid -> BENCH_8.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"revnic/internal/drivers"
	"revnic/internal/experiments"
	"revnic/internal/expr"
	"revnic/internal/solver"
	"revnic/internal/symexec"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1..table4, fig2..fig9) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		strategy = flag.String("strategy", "coverage", "path selection strategy for the exploration runs: "+strings.Join(symexec.SearcherNames(), ", "))
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the reverse-engineering context (results are identical for any value)")
		backend  = flag.String("solver", "", "solver backend: "+strings.Join(solver.BackendNames(), ", ")+" (default core; results are identical)")
		race     = flag.Bool("portfolio", false, "race solver backends on hard queries (shorthand for -solver=portfolio)")
		grid     = flag.Bool("grid", false, "run the solver/scheduling timing grid (workers x solver modes x shard factors) instead of the experiments")
		repeats  = flag.Int("repeats", 3, "repetitions per grid cell (with -grid)")
		gridOut  = flag.String("grid-out", "BENCH_9.json", "grid report output path (with -grid; '-' for stdout)")
		gridCSV  = flag.String("csv", "", "also export every individual grid run as CSV to this path (with -grid)")
		gridClu  = flag.Bool("grid-cluster", false, "include the coordinator straggler scenario (static vs work-stealing dispatch with one slow peer) in the grid")
		shardFac = flag.Int("shard-factor", 0, "shard-group granularity multiplier for the experiment runs: 0 auto-sizes (results are identical for a fixed value)")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.List(), "\n"))
		return
	}
	if *race && *backend == "" {
		*backend = solver.BackendPortfolio
	}
	if !solver.ValidBackend(*backend) {
		fmt.Fprintf(os.Stderr, "revbench: unknown solver backend %q (have %s)\n",
			*backend, strings.Join(solver.BackendNames(), ", "))
		os.Exit(1)
	}
	searcher, err := symexec.SearcherByName(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
		os.Exit(1)
	}
	if *grid {
		if err := runGrid(*strategy, searcher, *repeats, *gridOut, *gridCSV, *gridClu); err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "revbench: reverse engineering all four drivers (%d workers, %s strategy)...\n",
		*workers, *strategy)
	ctx, err := experiments.NewContextCfg(experiments.ContextConfig{
		Workers: *workers, Searcher: searcher, SolverBackend: *backend,
		ShardFactor: *shardFac,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
		os.Exit(1)
	}
	for _, d := range drivers.All() {
		e := ctx.Get(d.Name).Exploration
		fmt.Fprintf(os.Stderr, "revbench: %-12s %s: %d blocks covered, %d solver queries (%d cache hits, %d model reuses)\n",
			d.Name, e.Strategy, e.Collector.CoveredBlocks(),
			e.SolverQueries, e.SolverCacheHits, e.SolverModelHits)
	}
	// One-shot process: all four explorations intern into the default
	// arena (revnicd scopes an arena per job instead).
	fmt.Fprintf(os.Stderr, "revbench: %d interned expression nodes across all drivers\n", expr.InternedNodes())
	ids := experiments.List()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		if err := ctx.Run(strings.TrimSpace(id), os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
