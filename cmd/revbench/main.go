// Command revbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	revbench -exp all            # everything
//	revbench -exp fig2           # one experiment
//	revbench -list               # enumerate experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"revnic/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (table1..table4, fig2..fig9) or 'all'")
		list = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.List(), "\n"))
		return
	}
	fmt.Fprintln(os.Stderr, "revbench: reverse engineering all four drivers (shared context)...")
	ctx, err := experiments.NewContext()
	if err != nil {
		fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
		os.Exit(1)
	}
	ids := experiments.List()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		if err := ctx.Run(strings.TrimSpace(id), os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
