// Command revbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	revbench -exp all            # everything
//	revbench -exp fig2           # one experiment
//	revbench -list               # enumerate experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"revnic/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1..table4, fig2..fig9) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the reverse-engineering context (results are identical for any value)")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.List(), "\n"))
		return
	}
	fmt.Fprintf(os.Stderr, "revbench: reverse engineering all four drivers (%d workers)...\n", *workers)
	ctx, err := experiments.NewContextWorkers(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
		os.Exit(1)
	}
	ids := experiments.List()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		if err := ctx.Run(strings.TrimSpace(id), os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
