package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"revnic/internal/drivers"
	"revnic/internal/experiments"
	"revnic/internal/expr"
	"revnic/internal/solver"
	"revnic/internal/symexec"
)

// The ablation grid (-grid): reverse engineer the full four-driver
// workload under each solver configuration × worker count, repeated
// -repeats times, and write mean/std wall-clock per cell as JSON.
// Every cell explores the same deterministic schedule (fixed seed,
// same searcher), so the grid isolates solver-path cost: the
// incremental default (assumption-trail sessions + counterexample
// index) versus the no-incremental ablation versus the portfolio.
// Each run gets a fresh expression arena, so no interning carries
// over between cells and timings stay comparable.

type gridCell struct {
	// Solver names the solver configuration: "incremental" (the
	// default core backend with push/pop sessions), "no-incremental"
	// (ablation: one-shot solves only), "portfolio" (backend racing
	// on hard queries).
	Solver  string `json:"solver"`
	Workers int    `json:"workers"`
	// Searcher names the path-selection strategy the cell ran with.
	// Empty means the grid's -strategy flag (historically always
	// "coverage"); the searcher-axis cells pin "dfs" and "bfs"
	// explicitly. Different searchers explore different schedules, so
	// these cells have independent counter baselines.
	Searcher string `json:"searcher,omitempty"`
	// ShardFactor is the scheduling-granularity multiplier the cell
	// ran with (0 = the engine's auto factor). Like seed it is part of
	// the deterministic schedule, so cells with different factors have
	// independent counter baselines.
	ShardFactor int `json:"shard_factor,omitempty"`
	// Scenario tags cells outside the plain solver grid; the
	// coordinator straggler cells use "straggler-static" and
	// "straggler-steal" (one slow peer, static hash dispatch vs the
	// capacity-aware work queue).
	Scenario string `json:"scenario,omitempty"`
	// Wall-clock milliseconds for the whole four-driver workload (one
	// coordinator job for the straggler cells).
	MeanMS float64   `json:"mean_ms"`
	StdMS  float64   `json:"std_ms"`
	RunsMS []float64 `json:"runs_ms"`
	// Solver counters summed over the four drivers (identical across
	// repeats and across solver configurations — determinism check).
	SolverQueries int64 `json:"solver_queries"`
	CacheHits     int64 `json:"cache_hits"`
	ModelHits     int64 `json:"model_hits"`
	CoveredBlocks int   `json:"covered_blocks"`
	// SpeedupX, on the straggler-steal cell, is the static cell's mean
	// divided by this cell's mean: how much the work queue recovers
	// from one slow peer.
	SpeedupX float64 `json:"speedup_x,omitempty"`
}

type gridReport struct {
	Bench    string     `json:"bench"`
	Date     string     `json:"date"`
	Strategy string     `json:"strategy"`
	Repeats  int        `json:"repeats"`
	Drivers  []string   `json:"drivers"`
	Cells    []gridCell `json:"cells"`
}

func runGrid(strategy string, searcher symexec.SearcherFactory, repeats int, out, csvPath string, withCluster bool) error {
	if repeats < 1 {
		repeats = 1
	}
	type mode struct {
		name    string
		backend string
		noInc   bool
	}
	modes := []mode{
		{name: "incremental"},
		{name: "no-incremental", noInc: true},
		{name: "portfolio", backend: solver.BackendPortfolio},
	}
	var names []string
	for _, d := range drivers.All() {
		names = append(names, d.Name)
	}
	report := gridReport{
		Bench:    "revbench-grid",
		Date:     time.Now().UTC().Format("2006-01-02"),
		Strategy: strategy,
		Repeats:  repeats,
		Drivers:  names,
	}
	runCell := func(cell gridCell, m mode) (gridCell, error) {
		cellSearcher := searcher
		if cell.Searcher != "" {
			var err error
			cellSearcher, err = symexec.SearcherByName(cell.Searcher)
			if err != nil {
				return cell, fmt.Errorf("grid cell %s: %w", cell.Searcher, err)
			}
		}
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			ctx, err := experiments.NewContextCfg(experiments.ContextConfig{
				Workers:                  cell.Workers,
				Searcher:                 cellSearcher,
				Arena:                    expr.NewArena(),
				SolverBackend:            m.backend,
				DisableIncrementalSolver: m.noInc,
				ShardFactor:              cell.ShardFactor,
			})
			elapsed := time.Since(start)
			if err != nil {
				return cell, fmt.Errorf("grid cell %s/w%d/f%d: %w", m.name, cell.Workers, cell.ShardFactor, err)
			}
			cell.RunsMS = append(cell.RunsMS, float64(elapsed.Microseconds())/1000)
			if rep == repeats-1 {
				cell.SolverQueries, cell.CacheHits, cell.ModelHits, cell.CoveredBlocks = 0, 0, 0, 0
				for _, d := range names {
					e := ctx.Get(d).Exploration
					cell.SolverQueries += e.SolverQueries
					cell.CacheHits += e.SolverCacheHits
					cell.ModelHits += e.SolverModelHits
					cell.CoveredBlocks += e.Collector.CoveredBlocks()
				}
			}
		}
		cell.MeanMS, cell.StdMS = meanStd(cell.RunsMS)
		label := cell.Searcher
		if label == "" {
			label = strategy
		}
		fmt.Fprintf(os.Stderr, "revbench: grid %-14s workers=%d factor=%d searcher=%s: %.0f ms ± %.0f (%d queries, %d cache hits, %d model reuses)\n",
			cell.Solver, cell.Workers, cell.ShardFactor, label, cell.MeanMS, cell.StdMS,
			cell.SolverQueries, cell.CacheHits, cell.ModelHits)
		return cell, nil
	}
	for _, workers := range []int{1, 4} {
		for _, m := range modes {
			cell, err := runCell(gridCell{Solver: m.name, Workers: workers}, m)
			if err != nil {
				return err
			}
			report.Cells = append(report.Cells, cell)
		}
	}
	// The scheduling-granularity axis: the default solver at full
	// parallelism, across explicit shard factors. Factor 1 is the
	// coarse pre-factor schedule; each factor is its own deterministic
	// schedule, so counters differ across factors but not across
	// repeats.
	for _, sf := range []int{1, 2, 4} {
		cell, err := runCell(gridCell{Solver: "incremental", Workers: 4, ShardFactor: sf}, modes[0])
		if err != nil {
			return err
		}
		report.Cells = append(report.Cells, cell)
	}
	// The searcher axis: the default solver at full parallelism under
	// each non-default path-selection strategy. The plain cells above
	// already cover the -strategy searcher (coverage by default), so
	// this adds the DFS and BFS ablations the paper's exploration
	// section compares against.
	for _, name := range []string{"dfs", "bfs"} {
		if name == strategy {
			continue
		}
		cell, err := runCell(gridCell{Solver: "incremental", Workers: 4, Searcher: name}, modes[0])
		if err != nil {
			return err
		}
		report.Cells = append(report.Cells, cell)
	}
	if withCluster {
		cells, err := runStragglerScenario(repeats)
		if err != nil {
			return err
		}
		report.Cells = append(report.Cells, cells...)
	}
	if csvPath != "" {
		if err := writeGridCSV(csvPath, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "revbench: wrote per-run CSV to %s\n", csvPath)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "revbench: wrote grid report to %s\n", out)
	return nil
}

// writeGridCSV exports every individual run of every cell as one CSV
// row, for spreadsheet analysis beyond the mean/std the JSON carries.
func writeGridCSV(path string, report gridReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"scenario", "solver", "searcher", "workers", "shard_factor", "rep", "ms"}); err != nil {
		return err
	}
	for _, c := range report.Cells {
		searcher := c.Searcher
		if searcher == "" {
			searcher = report.Strategy
		}
		for rep, ms := range c.RunsMS {
			rec := []string{
				c.Scenario, c.Solver, searcher,
				strconv.Itoa(c.Workers), strconv.Itoa(c.ShardFactor),
				strconv.Itoa(rep), strconv.FormatFloat(ms, 'f', 3, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}
