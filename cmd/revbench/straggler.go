package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"revnic/internal/cluster"
	"revnic/internal/jobsvc"
)

// The coordinator straggler scenario (-grid-cluster): one job fans
// its shard groups out to two live in-process peers, one of which
// answers every shard request 1.2 seconds late. The same spec runs
// under static hash dispatch (each shard pinned to its hash-selected
// peer — the pre-queue scheduler) and under the capacity-aware work
// queue (idle peers pull shards, stragglers are re-dispatched
// first-completion-wins). Both runs must produce results bit-identical
// to a single-node run of the spec (arena_nodes excepted, as always
// for coordinator mode); the wall-clock ratio between them is what
// the scheduler buys back from a slow node.

const (
	stragglerLatency = 1200 * time.Millisecond
	stragglerSteal   = 250 * time.Millisecond
)

func runStragglerScenario(repeats int) ([]gridCell, error) {
	spec := jobsvc.JobSpec{Driver: "RTL8029", Seed: 11, Workers: 2}

	// Single-node reference for the bit-identity check.
	baseline := jobsvc.New(jobsvc.Config{Pool: 1})
	want, err := runCoordinatorJob(baseline, spec)
	drainService(baseline)
	if err != nil {
		return nil, fmt.Errorf("straggler baseline: %w", err)
	}

	static := gridCell{Solver: "incremental", Workers: spec.Workers, Scenario: "straggler-static"}
	steal := gridCell{Solver: "incremental", Workers: spec.Workers, Scenario: "straggler-steal"}
	for rep := 0; rep < repeats; rep++ {
		for _, mode := range []struct {
			cell   *gridCell
			static bool
		}{{&static, true}, {&steal, false}} {
			ms, res, err := timeStragglerRun(spec, mode.static)
			if err != nil {
				return nil, fmt.Errorf("straggler %s: %w", mode.cell.Scenario, err)
			}
			if err := sameJobResult(res, want); err != nil {
				return nil, fmt.Errorf("straggler %s: %w", mode.cell.Scenario, err)
			}
			mode.cell.RunsMS = append(mode.cell.RunsMS, ms)
			if rep == repeats-1 {
				mode.cell.SolverQueries = res.SolverQueries
				mode.cell.CacheHits = res.SolverCacheHits
				mode.cell.ModelHits = res.SolverModelHits
				mode.cell.CoveredBlocks = res.CoveredBlocks
			}
		}
	}
	static.MeanMS, static.StdMS = meanStd(static.RunsMS)
	steal.MeanMS, steal.StdMS = meanStd(steal.RunsMS)
	if steal.MeanMS > 0 {
		steal.SpeedupX = static.MeanMS / steal.MeanMS
	}
	fmt.Fprintf(os.Stderr, "revbench: straggler static %.0f ms, steal %.0f ms — %.2fx recovery\n",
		static.MeanMS, steal.MeanMS, steal.SpeedupX)
	if steal.SpeedupX < 1.3 {
		fmt.Fprintf(os.Stderr, "revbench: WARNING: straggler recovery %.2fx below the 1.3x target\n", steal.SpeedupX)
	}
	return []gridCell{static, steal}, nil
}

// timeStragglerRun stands up two live peers (one chronically slow at
// the transport layer), runs one coordinator job in the given dispatch
// mode, and returns the job wall-clock and result.
func timeStragglerRun(spec jobsvc.JobSpec, staticDispatch bool) (float64, *jobsvc.JobResult, error) {
	fast := jobsvc.New(jobsvc.Config{Pool: 1, ShardPool: 16})
	tsFast := httptest.NewServer(fast.Handler())
	slow := jobsvc.New(jobsvc.Config{Pool: 1, ShardPool: 16})
	tsSlow := httptest.NewServer(slow.Handler())
	defer func() {
		tsFast.Close()
		tsSlow.Close()
		drainService(fast)
		drainService(slow)
	}()

	ht := &cluster.HTTPTransport{Path: "/shards", ProbePath: "/healthz"}
	ft := cluster.NewFaultTransport(func(peer string, body []byte) (*cluster.Response, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		return ht.Send(ctx, peer, body)
	})
	ft.SetLatency(tsSlow.URL, stragglerLatency)

	coord := jobsvc.New(jobsvc.Config{
		Pool:           1,
		Coordinator:    true,
		StaticDispatch: staticDispatch,
		Cluster: cluster.Config{
			Peers:          []string{tsFast.URL, tsSlow.URL},
			Transport:      ft,
			AttemptTimeout: 60 * time.Second,
			MaxAttempts:    3,
			BackoffBase:    time.Millisecond,
			BackoffCap:     10 * time.Millisecond,
			Seed:           7,
			StealAfterMin:  stragglerSteal,
			StealInterval:  10 * time.Millisecond,
			// The slow peer still succeeds (latency < timeout), so the
			// breaker never has failures to count; a high MinSamples
			// keeps it out of the measurement entirely.
			Breaker: cluster.BreakerConfig{Window: 8, MinSamples: 100},
		},
	})
	defer drainService(coord)

	start := time.Now()
	res, err := runCoordinatorJob(coord, spec)
	if err != nil {
		return 0, nil, err
	}
	return float64(time.Since(start).Microseconds()) / 1000, res, nil
}

func runCoordinatorJob(svc *jobsvc.Service, spec jobsvc.JobSpec) (*jobsvc.JobResult, error) {
	j, err := svc.Submit(spec)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	done, err := svc.Wait(ctx, j.ID)
	if err != nil {
		return nil, err
	}
	if done.Status != jobsvc.StatusSucceeded {
		return nil, fmt.Errorf("job finished %s: %s", done.Status, done.Error)
	}
	return done.Result, nil
}

func drainService(svc *jobsvc.Service) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	svc.Drain(ctx)
}

// sameJobResult enforces the scheduling determinism contract: a
// coordinator result must match the single-node result of the same
// spec field for field, except arena_nodes (a coordinator's arena
// never interns what remote shards allocate on their peers).
func sameJobResult(got, want *jobsvc.JobResult) error {
	g, w := *got, *want
	g.ArenaNodes, w.ArenaNodes = 0, 0
	gb, _ := json.Marshal(g)
	wb, _ := json.Marshal(w)
	if !bytes.Equal(gb, wb) {
		return fmt.Errorf("result diverged from single-node run\n got: %s\nwant: %s", gb, wb)
	}
	return nil
}
