// Command perfgate is the CI performance-regression gate: it compares
// a freshly generated revbench grid report against the committed
// baseline (BENCH_9.json) and fails when any matching cell's mean
// wall-clock regressed beyond the threshold.
//
// Cells match on (solver, searcher, workers, shard_factor, scenario) —
// an absent searcher means "coverage", so baselines written before the
// searcher axis existed still match fresh coverage cells; cells
// present in only one report are skipped with a note, so a reduced CI
// grid (fewer repeats, no cluster scenario) gates only what it
// actually measured. Timing noise is expected — the default 25%
// threshold is meant to catch structural regressions (a scheduler
// serializing, a solver losing its cache), not jitter.
//
// Usage:
//
//	revbench -grid -repeats 2 -grid-out fresh.json
//	perfgate -base BENCH_9.json -fresh fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type cell struct {
	Solver      string  `json:"solver"`
	Searcher    string  `json:"searcher,omitempty"`
	Workers     int     `json:"workers"`
	ShardFactor int     `json:"shard_factor,omitempty"`
	Scenario    string  `json:"scenario,omitempty"`
	MeanMS      float64 `json:"mean_ms"`
}

type report struct {
	Bench string `json:"bench"`
	Cells []cell `json:"cells"`
}

func key(c cell) string {
	// Reports written before the searcher axis existed omit the field;
	// they all ran the coverage-guided default, so normalize rather than
	// orphan every historical baseline cell.
	s := c.Searcher
	if s == "" {
		s = "coverage"
	}
	return fmt.Sprintf("%s/%s/w%d/f%d/%s", c.Solver, s, c.Workers, c.ShardFactor, c.Scenario)
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Cells) == 0 {
		return r, fmt.Errorf("%s: no grid cells", path)
	}
	return r, nil
}

func main() {
	var (
		base      = flag.String("base", "BENCH_9.json", "committed baseline grid report")
		fresh     = flag.String("fresh", "", "freshly generated grid report to gate")
		threshold = flag.Float64("threshold", 0.25, "maximum allowed fractional mean regression per cell")
	)
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -fresh is required")
		os.Exit(2)
	}
	baseRep, err := load(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	freshRep, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	baseline := make(map[string]cell, len(baseRep.Cells))
	for _, c := range baseRep.Cells {
		baseline[key(c)] = c
	}
	matched, regressions := 0, 0
	for _, f := range freshRep.Cells {
		b, ok := baseline[key(f)]
		if !ok {
			fmt.Printf("perfgate: skip %-40s (not in baseline)\n", key(f))
			continue
		}
		if b.MeanMS <= 0 || f.MeanMS <= 0 {
			fmt.Printf("perfgate: skip %-40s (degenerate mean)\n", key(f))
			continue
		}
		matched++
		ratio := f.MeanMS/b.MeanMS - 1
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("perfgate: %-40s base %8.0f ms  fresh %8.0f ms  %+6.1f%%  %s\n",
			key(f), b.MeanMS, f.MeanMS, 100*ratio, status)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "perfgate: no cells matched between reports")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "perfgate: %d of %d cells regressed beyond %.0f%%\n",
			regressions, matched, 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("perfgate: %d cells within %.0f%% of baseline\n", matched, 100**threshold)
}
