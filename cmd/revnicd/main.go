// Command revnicd runs the reverse-engineering pipeline as a
// long-lived HTTP/JSON job service: clients POST job specs (bundled
// driver name or uploaded program image, searcher, fork-join fan-out,
// exploration budgets) to /jobs, poll /jobs/{id} for status and
// results, and scrape /metrics for Prometheus-style counters.
//
// Usage:
//
//	revnicd [-addr :8939] [-pool 2] [-queue 64] [-drain-timeout 1m]
//	        [-data-dir DIR] [-max-job-wall 0] [-per-client 0]
//	        [-retain-count 256] [-retain-age 0] [-max-body 8388608]
//	        [-peers URL,URL,...] [-coordinator] [-shard-pool 2]
//	        [-probe-interval 5s] [-solver core|smalldomain|portfolio]
//	        [-portfolio]
//
// Jobs run on a bounded pool; each job explores inside its own
// expression arena, so finished jobs release all their interned
// expressions and the daemon's memory returns to baseline between
// bursts. Jobs can be cancelled (DELETE /jobs/{id}) or bounded by a
// per-job deadline_ms and the global -max-job-wall cap; stopped jobs
// wind down cooperatively and finish with a partial result. With
// -data-dir set, accepted jobs are journaled to DIR/jobs.journal
// (fsynced before the submit is acknowledged) and replayed after a
// crash: queued jobs re-run, mid-run jobs surface as "interrupted".
// SIGINT/SIGTERM trigger a graceful drain: submissions are rejected,
// running and queued jobs finish (up to -drain-timeout), then the
// process exits.
//
// Cluster mode: with -coordinator, each job's deterministic fork-join
// shard groups are fanned out to the -peers instances over POST
// /shards, with per-shard timeouts, retries, hedged requests and
// per-peer circuit breakers; shards no peer can serve run locally, so
// a job completes as long as this node lives, and the merged result
// is bit-identical to a single-node run. Every revnicd serves /shards
// (bounded by -shard-pool) whether or not it coordinates, so a
// symmetric cluster just points each node at the others.
//
// Example session:
//
//	revnicd -addr :8939 -data-dir /var/lib/revnicd &
//	curl -s -X POST localhost:8939/jobs -d '{"driver":"RTL8029"}'
//	curl -s localhost:8939/jobs/job-1 | jq .status
//	curl -s localhost:8939/jobs/job-1/code
//	curl -s -X DELETE localhost:8939/jobs/job-1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"revnic/internal/cluster"
	"revnic/internal/jobsvc"
	"revnic/internal/solver"
)

func main() {
	var (
		addr          = flag.String("addr", ":8939", "listen address")
		pool          = flag.Int("pool", 2, "jobs executed concurrently")
		queue         = flag.Int("queue", 64, "accepted-but-unstarted job backlog bound")
		drainTimeout  = flag.Duration("drain-timeout", time.Minute, "graceful-drain allowance on SIGINT/SIGTERM")
		dataDir       = flag.String("data-dir", "", "durable job journal directory (empty = no durability)")
		maxJobWall    = flag.Duration("max-job-wall", 0, "global per-job wall-clock cap (0 = unlimited)")
		perClient     = flag.Int("per-client", 0, "concurrent live jobs allowed per client address (0 = unlimited)")
		retainCount   = flag.Int("retain-count", 256, "finished jobs kept before LRU eviction (negative = unlimited)")
		retainAge     = flag.Duration("retain-age", 0, "finished jobs evicted after this idle time (0 = no age bound)")
		maxBody       = flag.Int64("max-body", 8<<20, "POST /jobs request-body byte limit")
		peers         = flag.String("peers", "", "comma-separated base URLs of peer revnicd instances")
		coordinator   = flag.Bool("coordinator", false, "fan job shards out to -peers (local fallback guaranteed)")
		shardPool     = flag.Int("shard-pool", 2, "remote shards served concurrently before 503")
		noSteal       = flag.Bool("no-steal", false, "disable work-stealing re-dispatch of straggler shards (results are identical)")
		staticDisp    = flag.Bool("static-dispatch", false, "dispatch each shard to its hash-selected peer instead of the capacity-aware work queue (results are identical)")
		stealAfter    = flag.Duration("steal-after", 0, "minimum in-flight time before a shard counts as a straggler (0 = default 750ms)")
		probeInterval = flag.Duration("probe-interval", 5*time.Second, "peer health-probe period (0 = no probing)")
		backend       = flag.String("solver", "", "default solver backend for specs that omit solver_backend: "+strings.Join(solver.BackendNames(), ", ")+" (default core; results are identical)")
		race          = flag.Bool("portfolio", false, "race solver backends on hard queries by default (shorthand for -solver=portfolio)")
	)
	flag.Parse()
	if *race && *backend == "" {
		*backend = solver.BackendPortfolio
	}
	if !solver.ValidBackend(*backend) {
		fmt.Fprintf(os.Stderr, "revnicd: unknown solver backend %q (have %s)\n",
			*backend, strings.Join(solver.BackendNames(), ", "))
		os.Exit(1)
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	svc, err := jobsvc.Open(jobsvc.Config{
		Pool:           *pool,
		QueueDepth:     *queue,
		MaxJobWall:     *maxJobWall,
		PerClientCap:   *perClient,
		RetainCount:    *retainCount,
		RetainAge:      *retainAge,
		MaxBodyBytes:   *maxBody,
		DataDir:        *dataDir,
		Coordinator:    *coordinator,
		ShardPool:      *shardPool,
		StaticDispatch: *staticDisp,
		Cluster: cluster.Config{
			Peers:           peerList,
			Logf:            log.Printf,
			DisableStealing: *noSteal,
			StealAfterMin:   *stealAfter,
		},
		ProbeInterval:        *probeInterval,
		DefaultSolverBackend: *backend,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "revnicd: %v\n", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		requeued, interrupted := svc.ReplayStats()
		log.Printf("revnicd: journal %s: %d jobs requeued, %d marked interrupted",
			*dataDir, requeued, interrupted)
	}
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("revnicd: serving on %s (pool=%d, %d CPUs)", *addr, *pool, runtime.GOMAXPROCS(0))
		if *coordinator {
			log.Printf("revnicd: coordinator mode, %d peers %v", len(peerList), peerList)
		}
		errc <- server.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("revnicd: %v: draining (timeout %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			log.Printf("revnicd: drain incomplete: %v", err)
		}
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("revnicd: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "revnicd: %v\n", err)
			os.Exit(1)
		}
	}
}
