// Command revnicd runs the reverse-engineering pipeline as a
// long-lived HTTP/JSON job service: clients POST job specs (bundled
// driver name or uploaded program image, searcher, fork-join fan-out,
// exploration budgets) to /jobs, poll /jobs/{id} for status and
// results, and scrape /metrics for Prometheus-style counters.
//
// Usage:
//
//	revnicd [-addr :8939] [-pool 2] [-queue 64] [-drain-timeout 1m]
//
// Jobs run on a bounded pool; each job explores inside its own
// expression arena, so finished jobs release all their interned
// expressions and the daemon's memory returns to baseline between
// bursts. SIGINT/SIGTERM trigger a graceful drain: submissions are
// rejected, running and queued jobs finish (up to -drain-timeout),
// then the process exits.
//
// Example session:
//
//	revnicd -addr :8939 &
//	curl -s -X POST localhost:8939/jobs -d '{"driver":"RTL8029"}'
//	curl -s localhost:8939/jobs/job-1 | jq .status
//	curl -s localhost:8939/jobs/job-1/code
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"revnic/internal/jobsvc"
)

func main() {
	var (
		addr         = flag.String("addr", ":8939", "listen address")
		pool         = flag.Int("pool", 2, "jobs executed concurrently")
		queue        = flag.Int("queue", 64, "accepted-but-unstarted job backlog bound")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "graceful-drain allowance on SIGINT/SIGTERM")
	)
	flag.Parse()

	svc := jobsvc.New(jobsvc.Config{Pool: *pool, QueueDepth: *queue})
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("revnicd: serving on %s (pool=%d, %d CPUs)", *addr, *pool, runtime.GOMAXPROCS(0))
		errc <- server.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("revnicd: %v: draining (timeout %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			log.Printf("revnicd: drain incomplete: %v", err)
		}
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("revnicd: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "revnicd: %v\n", err)
			os.Exit(1)
		}
	}
}
