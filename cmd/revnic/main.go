// Command revnic reverse engineers one of the bundled closed-source
// binary drivers and emits the synthesized C code, a coverage report,
// and (optionally) a complete instantiated driver template for a
// target OS.
//
// Usage:
//
//	revnic -driver RTL8029 [-target linux] [-o out.c] [-report]
//
// This is the reproduction's equivalent of the RevNIC command line:
// the developer names the driver binary and supplies the shell-device
// PCI parameters (here derived from the bundled device inventory).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"revnic/internal/core"
	"revnic/internal/drivers"
	"revnic/internal/expr"
	"revnic/internal/solver"
	"revnic/internal/symexec"
	"revnic/internal/synth"
	"revnic/internal/template"
)

func main() {
	var (
		driverName = flag.String("driver", "RTL8029", "driver to reverse engineer (RTL8029, RTL8139, AMD PCNet, SMSC 91C111, SBLK100)")
		target     = flag.String("target", "", "instantiate a template for this OS (windows, linux, ucos-ii, kitos)")
		out        = flag.String("o", "", "write generated code to this file (default stdout)")
		report     = flag.Bool("report", false, "print coverage and classification report")
		seed       = flag.Int64("seed", 1, "exploration random seed")
		strategy   = flag.String("strategy", "coverage", "path selection strategy: "+strings.Join(symexec.SearcherNames(), ", "))
		noInc      = flag.Bool("no-incremental", false, "disable the solver's incremental SAT sessions (ablation; results are identical)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines exploring phase shards concurrently (results are identical for any value)")
		shardFac   = flag.Int("shard-factor", 0, "shard-group granularity multiplier: 0 auto-sizes, 1 reproduces the coarse schedule (part of the deterministic schedule, like -seed)")
		backend    = flag.String("solver", "", "solver backend: "+strings.Join(solver.BackendNames(), ", ")+" (default core; results are identical)")
		race       = flag.Bool("portfolio", false, "race solver backends on hard queries (shorthand for -solver=portfolio)")
		style      = flag.String("style", "", "code-emission style: "+strings.Join(synth.StyleNames(), ", ")+" (default goto; only the emitted-code shape changes)")
	)
	flag.Parse()
	if *race && *backend == "" {
		*backend = solver.BackendPortfolio
	}
	if !solver.ValidBackend(*backend) {
		fatal("unknown solver backend %q (have %s)", *backend, strings.Join(solver.BackendNames(), ", "))
	}
	if !synth.ValidStyle(*style) {
		fatal("unknown emission style %q (have %s)", *style, strings.Join(synth.StyleNames(), ", "))
	}

	info, err := drivers.ByName(*driverName)
	if err != nil {
		fatal("%v\navailable drivers:\n  %s", err, driverList())
	}
	searcher, err := symexec.SearcherByName(*strategy)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Fprintf(os.Stderr, "revnic: exercising %s (%s, %d bytes) with symbolic hardware...\n",
		info.Name, info.File, info.Program.Size())
	rev, err := core.ReverseEngineer(info.Program, core.Options{
		Shell:      core.ShellConfig(info),
		DriverName: info.Name,
		Style:      *style,
		Engine: symexec.Config{
			Seed: *seed, Searcher: searcher,
			DisableIncrementalSolver: *noInc, Workers: *workers,
			ShardFactor:   *shardFac,
			SolverBackend: *backend,
		},
	})
	if err != nil {
		fatal("reverse engineering failed: %v", err)
	}

	exp := rev.Exploration
	fmt.Fprintf(os.Stderr, "revnic: strategy %s: %d blocks covered, %d solver queries (%d cache hits, %d model reuses)\n",
		exp.Strategy, exp.Collector.CoveredBlocks(),
		exp.SolverQueries, exp.SolverCacheHits, exp.SolverModelHits)

	if *report {
		st := rev.Graph.ComputeStats()
		fmt.Fprintf(os.Stderr, "revnic: coverage %.1f%% of %d ground-truth basic blocks\n",
			100*rev.Coverage(), rev.GroundTruth.NumBlocks())
		fmt.Fprintf(os.Stderr, "revnic: %d functions recovered (%d fully automated, %d need template integration, %d mix HW+OS)\n",
			st.Funcs, st.AutomatedFuncs, st.ManualFuncs, st.MixedFuncs)
		fmt.Fprintf(os.Stderr, "revnic: %d executed blocks (%d translated), %d forks, %d loop-kills; wiretap: %s\n",
			exp.ExecutedBlocks, exp.TranslatedBlocks, exp.ForkCount,
			exp.KilledLoops, exp.Collector.Summary())
		// The CLI explores in the process-global default arena (one
		// run, one process); revnicd uses a private expr.Arena per job
		// instead, so this count stays flat there.
		fmt.Fprintf(os.Stderr, "revnic: %d interned expression nodes\n", expr.InternedNodes())
		if races := solver.PortfolioSnapshot(); len(races) > 0 {
			names := make([]string, 0, len(races))
			for n := range races {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				c := races[n]
				fmt.Fprintf(os.Stderr, "revnic: portfolio backend %s: %d wins, %d losses, %d cancels\n",
					n, c.Wins, c.Losses, c.Cancels)
			}
		}
		for _, wmsg := range rev.Synth.Warnings {
			fmt.Fprintf(os.Stderr, "revnic: warning: %s\n", wmsg)
		}
	}

	text := rev.Synth.Code
	if *target != "" {
		text = rev.InstantiateTemplate(template.OS(*target))
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "revnic: wrote %d bytes to %s\n", len(text), *out)
}

func driverList() string {
	var names []string
	for _, d := range drivers.Corpus() {
		names = append(names, d.Name)
	}
	return strings.Join(names, "\n  ")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "revnic: "+format+"\n", args...)
	os.Exit(1)
}
