// Command revfuzz is the differential fuzzing front end: it drives a
// synthesized driver and the original binary side by side on
// randomized but reproducible schedules and reports any behavioral
// divergence, minimized to a shortest reproducer.
//
// Fuzz the whole corpus with the CI budget:
//
//	revfuzz -device all -seed 1 -budget 64
//
// Prove the oracle catches bugs (exit 0 only if one is found):
//
//	revfuzz -device SBLK100 -plant send-port -expect-divergence
//
// Replay a saved schedule file:
//
//	revfuzz -replay examples/fuzz/sblk100_smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"revnic/internal/difffuzz"
	"revnic/internal/drivers"
	"revnic/internal/template"
)

func main() {
	var (
		device  = flag.String("device", "SBLK100", "corpus driver to fuzz, or \"all\"")
		osName  = flag.String("os", "windows", "synthesized-side template OS")
		seed    = flag.Int64("seed", 1, "schedule stream seed (same seed => identical run)")
		budget  = flag.Int("budget", 256, "total schedules per device")
		steps   = flag.Int("steps", 12, "max steps per schedule")
		workers = flag.Int("workers", 0, "executor parallelism (0 = default; never affects results)")
		plant   = flag.String("plant", "", "inject a synthetic synthesis bug: "+strings.Join(difffuzz.PlantKinds, ", "))
		seeds   = flag.String("seeds", "", "directory of seed schedule files (examples/fuzz)")
		replay  = flag.String("replay", "", "replay one schedule file instead of fuzzing")
		out     = flag.String("out", "", "write the JSON reports to this file")
		expect  = flag.Bool("expect-divergence", false, "invert the exit code: fail unless a divergence is found")
	)
	flag.Parse()

	if !difffuzz.ValidPlant(*plant) {
		fatalf("unknown -plant %q (known: %s)", *plant, strings.Join(difffuzz.PlantKinds, ", "))
	}
	osKind := template.OS(*osName)

	var reports []*difffuzz.Report
	if *replay != "" {
		reports = append(reports, runReplay(*replay, osKind, *plant, *workers))
	} else {
		for _, name := range deviceList(*device) {
			reports = append(reports, runFuzz(name, osKind, *seed, *budget, *steps, *workers, *plant, *seeds))
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}

	diverged := false
	for _, r := range reports {
		if len(r.Divergences) > 0 {
			diverged = true
		}
	}
	if diverged != *expect {
		if *expect {
			fmt.Fprintln(os.Stderr, "revfuzz: expected a divergence, found none")
		}
		os.Exit(1)
	}
}

func deviceList(arg string) []string {
	if arg != "all" {
		return []string{arg}
	}
	var names []string
	for _, info := range drivers.Corpus() {
		names = append(names, info.Name)
	}
	return names
}

func runFuzz(device string, osKind template.OS, seed int64, budget, steps, workers int, plant, seedDir string) *difffuzz.Report {
	cfg := difffuzz.Config{
		Device: device, OS: osKind, Seed: seed, Budget: budget,
		MaxSteps: steps, Workers: workers, Plant: plant,
	}
	if seedDir != "" {
		var err error
		cfg.Seeds, err = difffuzz.LoadSeedDir(seedDir, device)
		if err != nil {
			fatalf("%v", err)
		}
	}
	rep, err := difffuzz.Run(cfg)
	if err != nil {
		fatalf("%s: %v", device, err)
	}
	printReport(rep, len(cfg.Seeds))
	return rep
}

func runReplay(path string, osKind template.OS, plant string, workers int) *difffuzz.Report {
	sf, err := difffuzz.LoadSeedFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	if sf.OS != "" {
		osKind = template.OS(sf.OS)
	}
	h, err := difffuzz.NewHarness(sf.Device, osKind, plant)
	if err != nil {
		fatalf("%v", err)
	}
	rep := &difffuzz.Report{Device: sf.Device, Plant: plant}
	for _, out := range difffuzz.RunBatch(h, sf.Schedules, workers) {
		rep.Schedules++
		if out.Err != "" {
			rep.Errors = append(rep.Errors, out.Err)
		}
		if out.Unexplored {
			rep.Unexplored++
		}
		rep.CoverageKeys += len(out.CovKeys)
		if out.Divergence != nil {
			rep.Divergences = append(rep.Divergences, *out.Divergence)
		}
	}
	printReport(rep, len(sf.Schedules))
	return rep
}

func printReport(rep *difffuzz.Report, seedCount int) {
	fmt.Printf("%-12s %5d schedules  %5d coverage keys  %3d corpus  %3d unexplored  (%d seed schedules)\n",
		rep.Device, rep.Schedules, rep.CoverageKeys, rep.CorpusSize, rep.Unexplored, seedCount)
	for _, e := range rep.Errors {
		fmt.Printf("  ERROR: %s\n", firstLine(e))
	}
	for i := range rep.Divergences {
		d := &rep.Divergences[i]
		fmt.Printf("  DIVERGENCE: %s\n", d.String())
		if d.Minimized != nil {
			steps, _ := json.Marshal(d.Minimized.Steps)
			fmt.Printf("    reproducer: %s\n", steps)
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "revfuzz: "+format+"\n", args...)
	os.Exit(1)
}
